"""Gateway worker process: one full executor behind a control pipe.

:func:`worker_main` is the ``spawn`` entry point of every gateway
worker.  Each worker hosts a complete :class:`repro.core.Executor` —
its own CPU worker threads, simulated device group, admission
controller, resilience machinery, and metrics registry — so everything
the single-process stack guarantees (PR 4 recovery, PR 5 drain/settle,
PR 6 frozen replay) holds *inside* each worker unchanged; the gateway
composes those guarantees across processes (docs/gateway.md).

The main loop is intentionally tiny: it blocks on ``conn.recv()``,
dispatches one message, and returns to the pipe.  Submissions hop to a
dedicated submitter thread, so even a *blocking* admission policy
(``block`` at capacity) never starves the loop — heartbeats keep
flowing while a submission waits for capacity.  Terminal outcomes are
sent from future done-callbacks, which run on executor threads — the
single shared ``send`` lock keeps the pipe's frame stream intact.

Outcome classification mirrors the in-process soak harness exactly
(``completed``/``rejected``/``shed``/``deadline_exceeded``/
``cancelled``/``failed``), so gateway-level reconciliation can reuse
the same algebra: ``submitted == rejected + admitted`` and
``admitted == sum(settled outcomes)``.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AdmissionRejectedError
from repro.gateway import messages as m
from repro.gateway.chaos import ChaosProfile
from repro.gateway.spec import WorkSpec


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker executor shape, pickled into the spawned process."""

    threads: int = 2
    gpus: int = 1
    gpu_memory_bytes: int = 1 << 22
    max_topologies: Optional[int] = None
    policy: str = "block"
    block_timeout: Optional[float] = 30.0
    seed: int = 0
    #: optional protocol-chaos recipe (docs/gateway.md, "Chaos")
    chaos: Optional[ChaosProfile] = None


class _Inflight:
    """Worker-side record of one outstanding submission."""

    __slots__ = ("future", "deadline", "iid", "repeats", "cancelled", "t0")

    def __init__(self, future: Future, deadline, iid, repeats) -> None:
        self.future = future
        self.deadline = deadline
        self.iid = iid
        self.repeats = repeats
        self.cancelled = False
        self.t0 = time.monotonic()


class _WorkerState:
    """Everything the dispatch loop mutates, bundled for testability."""

    def __init__(self, wid: int, conn, config: WorkerConfig) -> None:
        from repro.core.executor import Executor
        from repro.service.admission import AdmissionController

        self.wid = wid
        self.conn = conn
        self.config = config
        admission = None
        if config.max_topologies is not None:
            admission = AdmissionController(
                max_topologies=config.max_topologies,
                policy=config.policy,
                block_timeout=config.block_timeout,
            )
        self.executor = Executor(
            num_workers=config.threads,
            num_gpus=config.gpus,
            gpu_memory_bytes=config.gpu_memory_bytes,
            seed=config.seed,
            admission=admission,
        )
        self._send_lock = threading.Lock()
        self.chaos = (
            config.chaos.state(wid)
            if config.chaos is not None and config.chaos.active
            else None
        )
        #: iid -> (spec, graph, GeneratedGraph|None, completed passes)
        self.instances: Dict[int, list] = {}
        #: fid -> FrozenTopology
        self.frozen: Dict[int, object] = {}
        self.inflight: Dict[int, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        #: Cancel messages that raced ahead of their Submit's admission
        self._precancelled: set = set()
        # submissions run on a dedicated thread so a blocking admission
        # policy ("block" at capacity) never starves the recv loop —
        # heartbeats keep flowing while a submission waits for capacity
        self._submit_q: "queue.Queue[Optional[m.Submit]]" = queue.Queue()
        self._submit_thread = threading.Thread(
            target=self._submit_loop, name=f"gw{wid}-submit", daemon=True
        )
        self._submit_thread.start()

    # -- plumbing ------------------------------------------------------
    def send(self, msg) -> None:
        """Pickle-frame one message onto the pipe (any thread)."""
        with self._send_lock:
            # chaos runs under the lock on purpose: a delay pauses the
            # whole frame stream (reorder-safe), and drops only touch
            # loss-tolerant kinds (Pong/EventMsg — see chaos.DROPPABLE)
            if self.chaos is not None and not self.chaos.allow_send(msg):
                return
            try:
                self.conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                # the gateway went away; nothing useful left to do with
                # this message — the monitor will reap us
                pass

    # -- graph resolution ---------------------------------------------
    def _resolve(self, req: m.Submit):
        """Graph object for a Submit: frozen by fid, else a (possibly
        cached) instance built from the spec."""
        if req.fid is not None:
            frozen = self.frozen.get(req.fid)
            if frozen is None:
                raise KeyError(f"unknown frozen fid {req.fid}")
            return frozen
        assert req.spec is not None
        if req.iid is None:
            graph, _gen = req.spec.build()
            return graph
        entry = self.instances.get(req.iid)
        if entry is None:
            graph, gen = req.spec.build()
            entry = [req.spec, graph, gen, 0]
            self.instances[req.iid] = entry
        return entry[1]

    # -- request handlers ---------------------------------------------
    def handle_submit(self, req: m.Submit) -> None:
        self._submit_q.put(req)

    def _submit_loop(self) -> None:
        while True:
            req = self._submit_q.get()
            try:
                if req is None:
                    return
                self._submit_one(req)
            finally:
                self._submit_q.task_done()

    def _submit_one(self, req: m.Submit) -> None:
        try:
            graph = self._resolve(req)
            fut = self.executor.run_n(
                graph,
                req.repeats,
                priority=req.priority,
                deadline=req.deadline,
            )
        except AdmissionRejectedError as exc:
            self.send(
                m.Settled(
                    rid=req.rid,
                    outcome="rejected",
                    error=repr(exc),
                    reason=exc.reason,
                )
            )
            return
        except BaseException as exc:  # noqa: BLE001 - protocol boundary
            self.send(
                m.Settled(rid=req.rid, outcome="failed", error=repr(exc))
            )
            return
        entry = _Inflight(fut, req.deadline, req.iid, req.repeats)
        with self._inflight_lock:
            self.inflight[req.rid] = entry
            pre = req.rid in self._precancelled
            self._precancelled.discard(req.rid)
            if pre:
                entry.cancelled = True
        self.send(m.Accepted(rid=req.rid, wid=self.wid))
        if pre:
            self.executor.cancel(fut)
        fut.add_done_callback(lambda f, rid=req.rid: self._settle(rid, f))

    def _settle(self, rid: int, fut: Future) -> None:
        """Classify one resolved future and report it (executor thread)."""
        with self._inflight_lock:
            entry = self.inflight.pop(rid, None)
        if entry is None:  # pragma: no cover - double callback guard
            return
        wall = time.monotonic() - entry.t0
        outcome, passes, error, reason = "completed", 0, "", ""
        try:
            passes = fut.result(timeout=0)
        except AdmissionRejectedError as exc:
            outcome, error, reason = "shed", repr(exc), exc.reason
        except CancelledError:
            if entry.cancelled:
                outcome = "cancelled"
            elif entry.deadline is not None:
                outcome = "deadline_exceeded"
            else:
                outcome = "cancelled"
        except BaseException as exc:  # noqa: BLE001 - protocol boundary
            outcome, error = "failed", repr(exc)
        if outcome == "completed" and entry.iid is not None:
            inst = self.instances.get(entry.iid)
            if inst is not None:
                inst[3] += passes
        self.send(
            m.Settled(
                rid=rid,
                outcome=outcome,
                passes=passes,
                error=error,
                reason=reason,
                wall_s=wall,
            )
        )

    def handle_freeze(self, req: m.Freeze) -> None:
        try:
            graph, _gen = req.spec.build()
            self.frozen[req.fid] = graph.freeze()
        except BaseException as exc:  # noqa: BLE001 - protocol boundary
            self.send(
                m.Frozen(rid=req.rid, fid=req.fid, ok=False, error=repr(exc))
            )
            return
        self.send(m.Frozen(rid=req.rid, fid=req.fid, ok=True))

    def handle_cancel(self, req: m.Cancel) -> None:
        with self._inflight_lock:
            entry = self.inflight.get(req.rid)
            if entry is not None:
                entry.cancelled = True
            else:
                # the Submit is still queued (or blocked in admission);
                # remember the cancel and apply it at admission time
                self._precancelled.add(req.rid)
        if entry is not None:
            self.executor.cancel(entry.future)

    def handle_drain(self, req: m.Drain) -> None:
        self.send(m.EventMsg(rid=None, kind="worker_draining", fields={"wid": self.wid}))
        # every Submit the gateway sent before this Drain must reach
        # the executor before admission closes — drain never rejects
        # work the gateway already accepted
        self._submit_q.join()
        ok = self.executor.drain(timeout=req.timeout)
        self.send(m.Drained(rid=req.rid, ok=ok))

    def handle_ping(self, req: m.Ping) -> None:
        with self._inflight_lock:
            n = len(self.inflight)
        self.send(m.Pong(seq=req.seq, wid=self.wid, inflight=n))

    def handle_metrics(self, req: m.MetricsPull) -> None:
        snap = dict(self.executor.metrics.snapshot())
        snap["worker.instances"] = len(self.instances)
        snap["worker.frozen"] = len(self.frozen)
        if self.chaos is not None:
            for kind, n in self.chaos.injected.items():
                snap[f"worker.chaos.{kind}"] = n
        self.send(m.MetricsReply(rid=req.rid, wid=self.wid, snapshot=snap))

    def handle_chaos(self, req: m.ChaosInject) -> None:
        """One-shot injected gray failure: wedge the recv loop itself.

        Runs on the recv-loop thread by design — while we sleep or spin
        here, Pings pile up unanswered, which is exactly the signature
        of a stalled-but-alive worker the gateway must detect."""
        if req.stall_s > 0:
            time.sleep(req.stall_s)
        if req.spin_s > 0:
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < req.spin_s:
                pass

    def handle_verify(self, req: m.Verify) -> None:
        entry = self.instances.get(req.iid)
        if entry is None:
            violations = (f"verify: unknown instance {req.iid}",)
        elif entry[2] is None:
            violations = ()  # no oracle for this spec kind
        elif entry[3] != req.passes:
            violations = (
                f"verify: instance {req.iid} completed {entry[3]} "
                f"pass(es) worker-side, gateway expected {req.passes}",
            )
        else:
            violations = tuple(entry[2].verify(passes=req.passes))
        self.send(m.Verified(rid=req.rid, iid=req.iid, violations=violations))


def worker_main(wid: int, conn, config: WorkerConfig) -> None:
    """Process entry point: serve the control pipe until Shutdown/EOF."""
    # The gateway owns this process's lifecycle through the protocol
    # (Shutdown / pipe EOF).  Operator signals — a SIGTERM to the
    # process group from systemd, a terminal Ctrl-C — must reach the
    # *gateway*, which drains gracefully and flushes its journal; a
    # worker that died to the same signal would turn every graceful
    # drain into a worker_lost storm.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    state = _WorkerState(wid, conn, config)
    state.send(m.Ready(wid=wid, pid=os.getpid()))
    handlers = {
        m.Submit: state.handle_submit,
        m.Freeze: state.handle_freeze,
        m.Cancel: state.handle_cancel,
        m.Drain: state.handle_drain,
        m.Ping: state.handle_ping,
        m.MetricsPull: state.handle_metrics,
        m.Verify: state.handle_verify,
        m.ChaosInject: state.handle_chaos,
    }
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                # the gateway died or closed the pipe: settle what we
                # can locally and exit
                break
            if isinstance(msg, m.Shutdown):
                break
            if state.chaos is not None:
                state.chaos.before_handle(msg)
            handler = handlers.get(type(msg))
            if handler is not None:
                handler(msg)
    finally:
        state._submit_q.put(None)
        # wait=False never strands a future; anything unresolved
        # resolves with CancelledError before teardown returns
        state.executor.shutdown(wait=False)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass


__all__ = ["WorkerConfig", "worker_main"]
