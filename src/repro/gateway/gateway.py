"""Asyncio multiprocess gateway: submission front-end + worker pool.

The tier above the single-process service layer (docs/gateway.md).  A
:class:`Gateway` owns N **spawned worker processes** — each hosting a
full :class:`repro.core.Executor` with its own simulated device group,
admission controller, and metrics registry — and multiplexes an
asyncio submission API over a pickle-framed pipe per worker:

- :meth:`Gateway.submit` routes a :class:`~repro.gateway.spec.WorkSpec`
  (or a pinned instance / frozen handle) to a worker and returns an
  awaitable :class:`Submission` whose ``async for`` side streams
  structured progress events;
- :meth:`Gateway.freeze` ships a spec to every worker once; later
  submissions replay by ``fid``, so the PR 6 compiled-plan fast path
  survives the process boundary;
- a **monitor task** heartbeats every worker, detects dead or
  heartbeat-silent processes, respawns a replacement into the same
  slot, and resolves the casualties' in-flight submissions through the
  replan path (resubmit once to the replacement; a second loss settles
  with a structured ``worker_lost`` outcome);
- :meth:`Gateway.drain` / :meth:`Gateway.shutdown` compose the PR 5
  per-executor guarantees across the pool, so every awaitable settles.

Gray failures get their own machinery (docs/gateway.md, "Gray
failures"), because a worker that is *alive but sick* must not be
killed — its in-flight work may still settle:

- every slot carries a :class:`~repro.gateway.health.WorkerHealth`
  estimator (heartbeat round-trip EWMA + settle-latency quantiles) and
  a per-worker :class:`~repro.resilience.CircuitBreaker`.  A worker
  that stops answering heartbeats past the **stall window**
  (``stall_misses`` intervals — well under the death budget) is marked
  *stalled*; consecutive stalled ticks trip its breaker open, which
  removes it from routing and reroutes its reroutable in-flight legs
  to healthy workers.  Heartbeats keep flowing — they double as
  half-open probes, and enough pongs close the breaker and re-admit
  the worker;
- a gateway-wide :class:`~repro.resilience.RetryBudget` token bucket
  caps all retry-shaped amplification (death replays + breaker
  reroutes); over-budget work settles immediately with a structured
  ``worker_lost`` / ``reason="retry_budget"`` result instead of
  feeding a retry storm.  Completed settlements refill the bucket;
- :meth:`Gateway.submit` accepts ``hedge_after=`` for **frozen**
  targets: if the primary has not settled by the delay (a float, or
  ``"p95"`` to quote the primary worker's settle-latency quantile),
  a duplicate leg launches on the healthiest other worker.  The first
  Settled wins, every other leg is cancelled, and the caller observes
  exactly one Result.

The gateway process itself stops being a single point of failure once
a **durable journal** is attached (``journal=`` / ``repro serve
--journal``; docs/durability.md): every acceptance is journaled before
the client sees the Submission, every settlement before the Result
resolves, and a client-supplied ``idempotency_key=`` dedupes
resubmission after a crash — a replayed key returns the journaled
settlement instead of re-running.  :meth:`Gateway.recover` replays the
log on restart: frozen fids are re-shipped, unsettled spec/frozen work
is resubmitted to the fresh pool, and pinned-instance entries settle
``worker_lost`` / ``reason="not_replayable"`` (the PR 8 taint
semantics, applied across a process boundary), so every journaled
submission reaches **exactly one** settlement.

The architecture follows vLLM's ``MultiprocessingGPUExecutor`` /
``DistributedGPUExecutor`` split and StarPU's driver-per-device worker
model: an asyncio front-end that fans control-plane messages out to
per-device worker processes, with a result handler and worker monitor
feeding completions back into the event loop.

Everything is observable through the ``gateway.*`` metrics cataloged
in docs/observability.md: the PR 8 counters plus
``gateway.health.*``, ``gateway.breaker.*``, ``gateway.hedge.*``, and
``gateway.retry_budget.*``.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import AsyncIterator, Dict, Iterable, List, Optional, Union

from repro.durability.journal import Journal, JournalEntry
from repro.errors import GatewayError, JournalError, WorkerDiedError
from repro.gateway import messages as m
from repro.gateway.health import HealthConfig, WorkerHealth
from repro.gateway.spec import WorkSpec
from repro.gateway.worker import WorkerConfig, worker_main
from repro.metrics.registry import MetricsRegistry
from repro.resilience import CircuitBreaker, RetryBudget

#: how long Gateway.start waits for every worker's Ready
_READY_TIMEOUT = 60.0
#: default grace period after drain for straggler Settled messages
_DRAIN_GRACE = 5.0
#: default missed-heartbeat budget before a silent worker is declared
#: dead (the *death* budget; the stall window is much smaller)
_HEARTBEAT_MISSES = 20
#: default missed-heartbeat budget before a worker is considered
#: *stalled* (alive but wedged) — must be < the death budget
_STALL_MISSES = 4


@dataclass(frozen=True)
class Result:
    """Terminal outcome of one gateway submission.

    Every submission settles with exactly one Result — the gateway
    never strands an awaitable.  ``outcome`` is one of
    :data:`repro.gateway.messages.OUTCOMES`; ``ok`` is sugar for
    ``outcome == "completed"``.
    """

    outcome: str
    passes: int = 0
    error: str = ""
    reason: str = ""
    wall_s: float = 0.0
    wid: int = -1
    replans: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == "completed"


class Submission:
    """Awaitable handle for one gateway submission.

    ``await sub`` yields the :class:`Result`; ``async for ev in
    sub.events()`` streams structured progress dicts (``submitted``,
    ``accepted``, ``replanned``, ``rerouted``, ``hedged``,
    ``settled``) and terminates once the submission settles.

    One submission may fan out into several worker-side **legs**
    (reroutes off a breaker-opened worker, hedges): each leg has its
    own rid, all map back here, and exactly one leg's Settled becomes
    the Result — the rest are cancelled and their settles dropped.
    """

    def __init__(
        self, rid: int, wid: int, tenant: str, request: Optional[m.Submit], loop
    ) -> None:
        self.rid = rid
        self.wid = wid
        self.tenant = tenant
        self.request = request
        self.replans = 0
        self.cancel_requested = False
        self.accepted = False
        #: durable journal id (0 = unjournaled) and the client's key
        self.jid = 0
        self.idempotency_key = ""
        #: set once the settlement has been journaled (exactly once)
        self.journal_settled = False
        self.t0 = time.monotonic()
        self.future: asyncio.Future = loop.create_future()
        self._events: asyncio.Queue = asyncio.Queue()
        #: active leg rids (primary + reroutes + hedges)
        self.rids: set = {rid}
        #: leg rid -> wid it was sent to
        self.legs: Dict[int, int] = {rid: wid}
        #: legs rerouted *away* — their "cancelled" settle is dropped
        self.suppressed: set = set()
        #: legs launched as hedges (for win/loss accounting)
        self.hedge_rids: set = set()

    def __await__(self):
        return self.future.__await__()

    def done(self) -> bool:
        return self.future.done()

    async def events(self) -> AsyncIterator[dict]:
        """Async iterator over this submission's progress events."""
        while True:
            ev = await self._events.get()
            if ev is None:
                return
            yield ev

    def _push(self, kind: str, **fields) -> None:
        ev = {"kind": kind, "rid": self.rid}
        ev.update(fields)
        self._events.put_nowait(ev)

    def _close_events(self) -> None:
        self._events.put_nowait(None)


@dataclass
class GraphHandle:
    """A spec pinned to one worker slot: repeated submissions reuse the
    worker-local graph instance (join counters and spans live there).
    A worker death re-materializes the instance on the replacement and
    marks the handle *tainted* — oracle verification across the death
    would be meaningless."""

    iid: int
    spec: WorkSpec
    wid: int
    tainted: bool = False


@dataclass(frozen=True)
class FrozenHandle:
    """A spec frozen on every worker under one gateway-wide ``fid``."""

    fid: int
    spec: WorkSpec


@dataclass
class RecoveryReport:
    """What :meth:`Gateway.recover` replayed out of the journal.

    ``submissions`` holds the live handles for the resubmitted entries
    (awaitable like any other Submission); ``not_replayable`` counts
    pinned-instance entries settled ``worker_lost`` /
    ``reason="not_replayable"`` — their worker-local graph state died
    with the old process, so re-running them would be a lie."""

    frozen_reshipped: int = 0
    resubmitted: int = 0
    not_replayable: int = 0
    jids: List[int] = field(default_factory=list)
    submissions: List[Submission] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "frozen_reshipped": self.frozen_reshipped,
            "resubmitted": self.resubmitted,
            "not_replayable": self.not_replayable,
            "jids": list(self.jids),
        }


class _WorkerHandle:
    """Gateway-side state for one worker slot occupant."""

    __slots__ = (
        "wid",
        "proc",
        "conn",
        "reader",
        "ready",
        "ready_event",
        "dead",
        "last_pong",
        "inflight",
        "pings",
    )

    def __init__(self, wid: int, proc, conn, loop) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.reader: Optional[threading.Thread] = None
        self.ready = False
        self.ready_event = asyncio.Event()
        self.dead = False
        self.last_pong = time.monotonic()
        self.inflight: set = set()
        #: ping seq -> send timestamp (round-trip measurement)
        self.pings: Dict[int, float] = {}


class Gateway:
    """Asyncio front-end over a pool of executor worker processes."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        worker: Optional[WorkerConfig] = None,
        heartbeat_interval: float = 0.25,
        max_replans: int = 1,
        heartbeat_misses: int = _HEARTBEAT_MISSES,
        stall_misses: int = _STALL_MISSES,
        drain_grace: float = _DRAIN_GRACE,
        health: Optional[HealthConfig] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        breaker_probe_successes: int = 2,
        journal: Optional[Union[str, Journal]] = None,
        seed: int = 0,
        name: str = "gateway",
    ) -> None:
        if num_workers < 1:
            raise GatewayError("gateway needs at least one worker")
        if heartbeat_misses < 1:
            raise GatewayError("gateway needs heartbeat_misses >= 1")
        if not 0 < stall_misses < heartbeat_misses:
            raise GatewayError(
                "gateway needs 0 < stall_misses < heartbeat_misses "
                "(a stall must be detectable before death)"
            )
        if drain_grace < 0:
            raise GatewayError("gateway needs drain_grace >= 0")
        self.name = name
        self.num_workers = num_workers
        self.worker_config = worker or WorkerConfig()
        self.heartbeat_interval = heartbeat_interval
        self.max_replans = max_replans
        self.heartbeat_misses = heartbeat_misses
        self.stall_misses = stall_misses
        self.drain_grace = drain_grace
        self.seed = seed
        self._health_config = health or HealthConfig()
        self._stall_after_s = stall_misses * heartbeat_interval
        self._retry_budget = retry_budget or RetryBudget()
        self._ctx = multiprocessing.get_context("spawn")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: List[Optional[_WorkerHandle]] = [None] * num_workers
        self._health: List[WorkerHealth] = [
            self._new_health(wid) for wid in range(num_workers)
        ]
        # breakers persist across respawns (reset(), not replaced):
        # the *slot* carries the trip history, not the process
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                probe_successes=breaker_probe_successes,
                seed=seed,
                name=f"{name}-w{wid}",
            )
            for wid in range(num_workers)
        ]
        self._subs: Dict[int, Submission] = {}
        self._pending: Dict[int, asyncio.Future] = {}
        self._frozen: Dict[int, WorkSpec] = {}
        self._instances: Dict[int, GraphHandle] = {}
        #: durable journal (opened in start()); jid -> live Submission
        self._journal_src = journal
        self.journal: Optional[Journal] = None
        self._jid_subs: Dict[int, Submission] = {}
        self._rids = itertools.count(1)
        self._fids = itertools.count(1)
        self._iids = itertools.count(1)
        self._rr = itertools.count()
        self._ping_seq = itertools.count(1)
        self._draining = False
        self._closing = False
        self._started = False
        self._monitor_task: Optional[asyncio.Task] = None

        # gateway.* metrics (docs/observability.md, "Gateway counters")
        self.metrics = MetricsRegistry()
        self._m_submits = self.metrics.counter("gateway.submits")
        self._m_cancels = self.metrics.counter("gateway.cancels")
        self._m_settled = self.metrics.counter("gateway.settled")
        self._m_deaths = self.metrics.counter("gateway.worker_deaths")
        self._m_respawns = self.metrics.counter("gateway.respawns")
        self._m_replans = self.metrics.counter("gateway.replans")
        self._m_rt = self.metrics.histogram("gateway.round_trip_seconds")
        self._m_stalls = self.metrics.counter("gateway.health.stalls")
        self._m_health_score = self.metrics.histogram("gateway.health.score")
        self._m_breaker_opened = self.metrics.counter("gateway.breaker.opened")
        self._m_breaker_closed = self.metrics.counter("gateway.breaker.closed")
        self._m_rerouted = self.metrics.counter("gateway.breaker.rerouted")
        self._m_hedge_launched = self.metrics.counter("gateway.hedge.launched")
        self._m_hedge_wins = self.metrics.counter("gateway.hedge.wins")
        self._m_hedge_losses = self.metrics.counter("gateway.hedge.losses")
        self._m_hedge_dropped = self.metrics.counter("gateway.hedge.dropped")
        self._m_hedge_no_target = self.metrics.counter("gateway.hedge.no_target")
        self._m_budget_spent = self.metrics.counter("gateway.retry_budget.spent")
        self._m_budget_exhausted = self.metrics.counter(
            "gateway.retry_budget.exhausted"
        )
        self._m_dedup = self.metrics.counter("journal.dedup_hits")
        self._m_recover_frozen = self.metrics.counter(
            "gateway.recover.frozen_reshipped"
        )
        self._m_recover_resubmitted = self.metrics.counter(
            "gateway.recover.resubmitted"
        )
        self._m_recover_not_replayable = self.metrics.counter(
            "gateway.recover.not_replayable"
        )
        self.metrics.register_callback(
            "gateway.workers_alive", self._workers_alive
        )
        self.metrics.register_callback(
            "gateway.inflight",
            lambda: len({id(s) for s in self._subs.values()}),
        )
        self.metrics.register_callback(
            "gateway.health.stalled",
            lambda: sum(1 for h in self._health if h.state == "stalled"),
        )
        self.metrics.register_callback(
            "gateway.breaker.open",
            lambda: sum(1 for b in self._breakers if not b.routable),
        )
        self.metrics.register_callback(
            "gateway.retry_budget.tokens", lambda: self._retry_budget.tokens
        )

    def _new_health(self, wid: int) -> WorkerHealth:
        return WorkerHealth(
            wid,
            config=self._health_config,
            stall_after_s=self.stall_misses * self.heartbeat_interval,
        )

    # -- lifecycle -----------------------------------------------------
    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def start(self) -> None:
        """Spawn the worker pool and wait for every Ready."""
        if self._started:
            raise GatewayError("gateway already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        # open the journal before any worker spawns: a corrupt or
        # unwritable log must fail the start, not strand a half-pool
        if self._journal_src is not None and self.journal is None:
            if isinstance(self._journal_src, Journal):
                self.journal = self._journal_src
            else:
                self.journal = Journal(
                    str(self._journal_src), metrics=self.metrics
                )
            self.journal.open()
            # journaled fids survive the restart; new freezes must not
            # collide with them
            self._fids = itertools.count(self.journal.next_fid)
        for wid in range(self.num_workers):
            self._workers[wid] = self._spawn(wid)
        await self._wait_ready()
        self._monitor_task = asyncio.create_task(
            self._monitor(), name=f"{self.name}-monitor"
        )

    def _spawn(self, wid: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, child_conn, self.worker_config),
            name=f"{self.name}-worker{wid}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(wid, proc, parent_conn, self._loop)
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"{self.name}-reader{wid}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    async def _wait_ready(self) -> None:
        waits = [
            h.ready_event.wait() for h in self._workers if h is not None
        ]
        try:
            await asyncio.wait_for(asyncio.gather(*waits), _READY_TIMEOUT)
        except asyncio.TimeoutError:
            raise GatewayError(
                "gateway workers did not come up within "
                f"{_READY_TIMEOUT:.0f}s"
            ) from None

    def _workers_alive(self) -> int:
        return sum(
            1
            for h in self._workers
            if h is not None and not h.dead and h.proc.is_alive()
        )

    # -- pipe plumbing -------------------------------------------------
    def _read_loop(self, handle: _WorkerHandle) -> None:
        """Reader thread: pump one worker's pipe into the event loop."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._on_message, handle, msg)
            except RuntimeError:  # loop closed during teardown
                return
        try:
            self._loop.call_soon_threadsafe(self._on_pipe_closed, handle)
        except RuntimeError:
            pass

    def _send(self, handle: _WorkerHandle, msg) -> None:
        try:
            handle.conn.send(msg)
        except (OSError, ValueError, BrokenPipeError):
            self._worker_died(handle, "pipe")

    def _on_pipe_closed(self, handle: _WorkerHandle) -> None:
        if not self._closing:
            self._worker_died(handle, "pipe")

    def _on_message(self, handle: _WorkerHandle, msg) -> None:
        if isinstance(msg, m.Settled):
            self._on_settled(handle, msg)
        elif isinstance(msg, m.Accepted):
            sub = self._subs.get(msg.rid)
            if sub is not None:
                sub.accepted = True
                sub._push("accepted", wid=msg.wid)
        elif isinstance(msg, m.Pong):
            self._on_pong(handle, msg)
        elif isinstance(msg, m.Ready):
            if msg.protocol != m.PROTOCOL_VERSION:  # pragma: no cover
                self._worker_died(handle, "protocol")
                return
            handle.ready = True
            handle.ready_event.set()
        elif isinstance(msg, (m.Frozen, m.Drained, m.MetricsReply, m.Verified)):
            fut = self._pending.pop(msg.rid, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif isinstance(msg, m.EventMsg):
            if msg.rid is not None:
                sub = self._subs.get(msg.rid)
                if sub is not None:
                    sub._push(msg.kind, **msg.fields)

    def _on_pong(self, handle: _WorkerHandle, msg: m.Pong) -> None:
        now = time.monotonic()
        handle.last_pong = now
        sent = handle.pings.pop(msg.seq, None)
        # earlier pings were either answered already or dropped by
        # chaos; the pipe is FIFO, so nothing older can still arrive
        for seq in [s for s in handle.pings if s < msg.seq]:
            handle.pings.pop(seq, None)
        health = self._health[handle.wid]
        if sent is not None:
            health.on_pong(now - sent, now)
        else:  # dropped-ping echo raced a respawn; freshness only
            health.last_pong = now
        # a pong clears the stall flag; the breaker gates re-admission
        health.mark_stalled(False)
        self._breaker_success(handle, now)

    # -- breaker transitions -------------------------------------------
    def _breaker_success(self, handle: _WorkerHandle, now: float) -> None:
        b = self._breakers[handle.wid]
        closed_before = b.closed_total
        b.record_success(now)
        if b.closed_total != closed_before:
            # half-open probes passed: the slot is routable again
            self._m_breaker_closed.inc()

    def _breaker_failure(self, handle: _WorkerHandle, now: float) -> None:
        b = self._breakers[handle.wid]
        opened_before = b.opened_total
        b.record_failure(now)
        if b.opened_total != opened_before:
            self._on_breaker_open(handle)

    def _on_breaker_open(self, handle: _WorkerHandle) -> None:
        """The slot's breaker tripped: it leaves the routing set (the
        worker stays alive — its in-flight work may still settle) and
        its reroutable legs move to healthy workers, budget allowing."""
        self._m_breaker_opened.inc()
        if self._closing or self._draining:
            return
        for rid in sorted(handle.inflight):
            sub = self._subs.get(rid)
            if (
                sub is None
                or sub.future.done()
                or sub.cancel_requested
                or len(sub.rids) > 1  # already redundant (hedge/reroute)
                or sub.request.iid is not None  # pinned to this worker
            ):
                continue
            self._reroute_leg(sub, rid, handle)

    def _reroute_leg(
        self, sub: Submission, old_rid: int, old_handle: _WorkerHandle
    ) -> bool:
        """Duplicate one leg onto the healthiest other worker and
        suppress the old leg's eventual cancel-settle.  The old leg is
        *not* force-settled: if the sick worker finishes first anyway,
        first-settle-wins still yields exactly one Result."""
        target = self._healthiest(exclude={old_handle.wid})
        if target is None:
            return False
        if not self._retry_budget.try_spend():
            self._m_budget_exhausted.inc()
            return False
        self._m_budget_spent.inc()
        new_rid = next(self._rids)
        request = replace(sub.request, rid=new_rid)
        sub.rids.add(new_rid)
        sub.legs[new_rid] = target.wid
        sub.suppressed.add(old_rid)
        self._subs[new_rid] = sub
        target.inflight.add(new_rid)
        self._m_rerouted.inc()
        sub._push("rerouted", from_wid=old_handle.wid, to_wid=target.wid)
        self._send(target, request)
        self._send(old_handle, m.Cancel(rid=old_rid))
        return True

    # -- settlement ----------------------------------------------------
    def _drop_legs(self, sub: Submission, winner_rid: Optional[int]) -> None:
        """Remove every leg of *sub* from the routing tables; cancel
        the losers on their (live) workers and account hedge losses."""
        for rid in list(sub.rids):
            self._subs.pop(rid, None)
            wid = sub.legs.pop(rid, sub.wid)
            h = self._workers[wid] if 0 <= wid < self.num_workers else None
            if h is not None:
                h.inflight.discard(rid)
            if rid == winner_rid:
                continue
            if h is not None and not h.dead and not self._closing:
                self._send(h, m.Cancel(rid=rid))
            if rid in sub.hedge_rids:
                self._m_hedge_losses.inc()
        sub.rids.clear()
        sub.suppressed.clear()

    def _on_settled(self, handle: _WorkerHandle, msg: m.Settled) -> None:
        handle.inflight.discard(msg.rid)
        sub = self._subs.get(msg.rid)
        if sub is None:
            return
        if sub.future.done():  # stale leg of an already-settled sub
            self._subs.pop(msg.rid, None)
            sub.rids.discard(msg.rid)
            sub.legs.pop(msg.rid, None)
            return
        self._health[handle.wid].on_settle(msg.wall_s)
        if (
            msg.rid in sub.suppressed
            and msg.outcome == "cancelled"
            and not sub.cancel_requested
            and len(sub.rids) > 1
        ):
            # a rerouted-away leg acknowledging its gateway-issued
            # Cancel: drop it silently — the live leg will settle
            self._subs.pop(msg.rid, None)
            sub.rids.discard(msg.rid)
            sub.legs.pop(msg.rid, None)
            sub.suppressed.discard(msg.rid)
            return
        # first Settled wins; every other leg is cancelled and its
        # settle dropped — the caller observes exactly one Result
        hedge_won = msg.rid in sub.hedge_rids
        self._drop_legs(sub, winner_rid=msg.rid)
        if hedge_won:
            self._m_hedge_wins.inc()
        self._m_settled.inc()
        self._m_rt.observe(time.monotonic() - sub.t0)
        if msg.outcome == "completed":
            self._retry_budget.record_success()
        result = Result(
            outcome=msg.outcome,
            passes=msg.passes,
            error=msg.error,
            reason=msg.reason,
            wall_s=msg.wall_s,
            wid=handle.wid,
            replans=sub.replans,
        )
        # settlement is journaled *before* the client's Result resolves:
        # an outcome the client observed is never re-run after a crash
        self._journal_settle(sub, result)
        sub._push("settled", outcome=msg.outcome, wid=handle.wid)
        sub._close_events()
        sub.future.set_result(result)

    def _journal_settle(self, sub: Submission, result: Result) -> None:
        """Journal *sub*'s terminal outcome exactly once.

        A journal write failure here is counted (``journal.errors``)
        and swallowed: the settlement already happened worker-side, so
        blocking the client would strand a completed awaitable.  The
        degradation is honest — a crash before the next successful
        append replays the entry at-least-once (docs/durability.md,
        "Exactly-once matrix")."""
        if self.journal is None or not sub.jid or sub.journal_settled:
            return
        sub.journal_settled = True
        self._jid_subs.pop(sub.jid, None)
        try:
            self.journal.append_settled(
                sub.jid,
                outcome=result.outcome,
                passes=result.passes,
                error=result.error,
                reason=result.reason,
                wall_s=result.wall_s,
                replans=result.replans,
                wid=result.wid,
            )
        except JournalError:
            pass

    def _force_settle(self, sub: Submission, outcome: str, error: str, reason: str = "") -> None:
        """Settle a submission gateway-side (worker loss, shutdown)."""
        self._drop_legs(sub, winner_rid=None)
        if sub.future.done():
            return
        self._m_settled.inc()
        self._m_rt.observe(time.monotonic() - sub.t0)
        result = Result(
            outcome=outcome,
            error=error,
            reason=reason,
            wall_s=time.monotonic() - sub.t0,
            wid=sub.wid,
            replans=sub.replans,
        )
        self._journal_settle(sub, result)
        sub._push("settled", outcome=outcome, wid=sub.wid)
        sub._close_events()
        sub.future.set_result(result)

    # -- worker failure handling (docs/gateway.md) ---------------------
    def _worker_died(self, handle: _WorkerHandle, reason: str) -> None:
        """Reap one dead/silent worker: respawn a replacement into the
        slot, replay its in-flight submissions once (budget allowing),
        settle the rest with structured ``worker_lost`` results."""
        if handle.dead:
            return
        handle.dead = True
        self._m_deaths.inc()
        self._health[handle.wid].mark_dead()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        casualties = sorted(handle.inflight)
        handle.inflight.clear()

        replacement: Optional[_WorkerHandle] = None
        if not self._closing:
            replacement = self._spawn(handle.wid)
            self._workers[handle.wid] = replacement
            self._m_respawns.inc()
            # a fresh process gets a clean health history and a
            # force-closed breaker — the slot's sickness died with it
            self._health[handle.wid] = self._new_health(handle.wid)
            self._breakers[handle.wid].reset()
            # frozen topologies ship to the replacement before any
            # replayed submission (pipe FIFO preserves the order)
            for fid, spec in self._frozen.items():
                self._send(
                    replacement, m.Freeze(rid=next(self._rids), fid=fid, spec=spec)
                )
            # worker-local graph instances died with the process: the
            # replacement rebuilds them on first use, but their oracle
            # state is gone — taint them for verification purposes
            for gh in self._instances.values():
                if gh.wid == handle.wid:
                    gh.tainted = True

        for rid in casualties:
            sub = self._subs.get(rid)
            if sub is None:
                continue
            if sub.future.done():
                self._subs.pop(rid, None)
                sub.rids.discard(rid)
                sub.legs.pop(rid, None)
                continue
            # a redundant leg (hedge or reroute twin) died with the
            # worker while a sibling is still live: drop just the leg
            others_live = any(
                r != rid
                and sub.legs.get(r) != handle.wid
                and self._leg_alive(sub.legs.get(r))
                for r in sub.rids
            )
            if others_live:
                self._subs.pop(rid, None)
                sub.rids.discard(rid)
                sub.legs.pop(rid, None)
                sub.suppressed.discard(rid)
                if rid in sub.hedge_rids:
                    sub.hedge_rids.discard(rid)
                    self._m_hedge_dropped.inc()
                continue
            exc = WorkerDiedError(handle.wid, reason)
            if (
                replacement is None
                or sub.cancel_requested
                or sub.replans >= self.max_replans
            ):
                self._force_settle(
                    sub,
                    outcome="cancelled" if sub.cancel_requested else "worker_lost",
                    error=repr(exc),
                    reason=reason,
                )
                continue
            if not self._retry_budget.try_spend():
                # over budget: fail fast with a structured reason
                # instead of amplifying a correlated failure
                self._m_budget_exhausted.inc()
                self._force_settle(
                    sub,
                    outcome="worker_lost",
                    error=repr(exc),
                    reason="retry_budget",
                )
                continue
            self._m_budget_spent.inc()
            # the resilience replan path, one tier up: re-materialize
            # the idempotent spec on the replacement and resubmit
            sub.replans += 1
            self._m_replans.inc()
            sub._push("replanned", wid=handle.wid, reason=reason)
            replacement.inflight.add(rid)
            sub.legs[rid] = replacement.wid
            self._send(replacement, replace(sub.request, rid=rid))

    def _leg_alive(self, wid: Optional[int]) -> bool:
        if wid is None or not 0 <= wid < self.num_workers:
            return False
        h = self._workers[wid]
        return h is not None and not h.dead

    async def _monitor(self) -> None:
        """Heartbeat every worker; reap the dead and the silent, mark
        the stalled, and feed the per-slot breakers."""
        while not self._closing:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for handle in list(self._workers):
                if handle is None or handle.dead:
                    continue
                if not handle.proc.is_alive():
                    self._worker_died(handle, "exited")
                    continue
                # a draining worker legitimately blocks in drain();
                # only liveness (is_alive) applies then
                if not self._draining:
                    silence = now - handle.last_pong
                    if silence > self.heartbeat_misses * self.heartbeat_interval:
                        self._worker_died(handle, "heartbeat")
                        continue
                    health = self._health[handle.wid]
                    stalled = silence > self._stall_after_s
                    if health.mark_stalled(stalled) and stalled:
                        self._m_stalls.inc()
                    if stalled:
                        # each stalled tick is one breaker failure;
                        # threshold consecutive ticks trip it open
                        self._breaker_failure(handle, now)
                    self._m_health_score.observe(health.score(now))
                # pings flow unconditionally — against an open breaker
                # they are exactly the half-open probes that re-admit
                seq = next(self._ping_seq)
                handle.pings[seq] = now
                if len(handle.pings) > 4 * self.heartbeat_misses:
                    for s in sorted(handle.pings)[: -2 * self.heartbeat_misses]:
                        handle.pings.pop(s, None)
                self._send(handle, m.Ping(seq=seq))

    # -- routing -------------------------------------------------------
    def _slot(self, wid: int) -> _WorkerHandle:
        handle = self._workers[wid]
        if handle is None:  # pragma: no cover - slots filled at start
            raise GatewayError(f"worker slot {wid} is empty")
        return handle

    def _routable(self, wid: int) -> bool:
        h = self._workers[wid]
        return h is not None and not h.dead and self._breakers[wid].routable

    def _route(self, tenant: str) -> _WorkerHandle:
        if tenant:
            base = zlib.crc32(tenant.encode()) % self.num_workers
        else:
            base = next(self._rr) % self.num_workers
        # walk forward from the affinity slot past breaker-opened /
        # dead workers; if every slot is sick, keep the deterministic
        # affinity choice (routing must never fail outright)
        for k in range(self.num_workers):
            wid = (base + k) % self.num_workers
            if self._routable(wid):
                return self._slot(wid)
        return self._slot(base)

    def _healthiest(
        self, exclude: Iterable[int] = ()
    ) -> Optional[_WorkerHandle]:
        """The routable worker with the best health score, or None."""
        skip = set(exclude)
        now = time.monotonic()
        best: Optional[_WorkerHandle] = None
        best_score = -1.0
        for wid in range(self.num_workers):
            if wid in skip or not self._routable(wid):
                continue
            s = self._health[wid].score(now)
            if s > best_score:
                best, best_score = self._workers[wid], s
        return best

    # -- public API ----------------------------------------------------
    def instance(self, spec: WorkSpec, *, tenant: str = "") -> GraphHandle:
        """Pin *spec* to one worker: repeated submissions of the handle
        share the worker-local graph (the stacking/verification shape
        of the soak harness)."""
        self._check_open()
        handle = self._route(tenant)
        gh = GraphHandle(iid=next(self._iids), spec=spec, wid=handle.wid)
        self._instances[gh.iid] = gh
        return gh

    async def freeze(self, spec: WorkSpec) -> FrozenHandle:
        """Freeze *spec* on every worker; returns the replay handle."""
        self._check_open()
        fid = next(self._fids)
        acks = []
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.Freeze(rid=rid, fid=fid, spec=spec))
            acks.append(fut)
        replies = await asyncio.gather(*acks)
        bad = [r for r in replies if not r.ok]
        if bad:
            raise GatewayError(
                f"freeze failed on {len(bad)} worker(s): {bad[0].error}"
            )
        self._frozen[fid] = spec
        # journal the fid so a recovering gateway can re-ship it and
        # replay journaled fid-submissions against the same handle
        if self.journal is not None and fid not in self.journal.frozen_specs:
            self.journal.append_frozen(fid, spec)
        return FrozenHandle(fid=fid, spec=spec)

    def frozen_handles(self) -> Dict[int, FrozenHandle]:
        """Live :class:`FrozenHandle` for every shipped fid — after
        :meth:`recover` this is how clients re-acquire their handles."""
        return {
            fid: FrozenHandle(fid=fid, spec=spec)
            for fid, spec in self._frozen.items()
        }

    def submit(
        self,
        target: Union[WorkSpec, GraphHandle, FrozenHandle],
        *,
        tenant: str = "",
        priority: int = 0,
        deadline: Optional[float] = None,
        repeats: int = 1,
        hedge_after: Optional[Union[float, str]] = None,
        idempotency_key: str = "",
    ) -> Submission:
        """Submit one workload; returns the awaitable handle.

        *target* is a :class:`~repro.gateway.spec.WorkSpec` (one-shot,
        routed by *tenant* hash or round-robin), a
        :class:`GraphHandle` (pinned to its worker), or a
        :class:`FrozenHandle` (replayed by ``fid`` on any worker).
        *priority* and *deadline* pass through to the worker-side
        executor unchanged (docs/runtime.md, "Submission lifecycle").

        *hedge_after* (frozen targets only — they are the only shape
        every worker can replay) arms a tail-latency hedge: if the
        primary has not settled after that many seconds (or the
        primary worker's settle-latency quantile, for ``"p95"``), a
        duplicate leg launches on the healthiest other worker; the
        first Settled wins and the loser is cancelled.

        *idempotency_key* (requires an attached journal) makes the
        submission safe to replay across a gateway crash: a key the
        journal already settled returns the journaled Result without
        re-running; a key still in flight returns the live handle; a
        key journaled but orphaned by a crash (restart without
        :meth:`recover`) is resubmitted from the **journaled** entry
        under its original jid, the caller's payload ignored; a fresh
        key is journaled **before** this method returns, so the
        acceptance survives any later crash (docs/durability.md).
        """
        self._check_open()
        if hedge_after is not None and not isinstance(target, FrozenHandle):
            raise GatewayError(
                "hedge_after requires a FrozenHandle: only frozen "
                "topologies are replayable on every worker"
            )
        if idempotency_key and self.journal is None:
            raise GatewayError(
                "idempotency_key requires a journal "
                "(Gateway(journal=...) / repro serve --journal)"
            )
        jid: Optional[int] = None
        if idempotency_key:
            jid = self.journal.lookup(idempotency_key)
            if jid is not None:
                entry = self.journal.get(jid)
                if entry is not None and entry.is_settled:
                    # the journal already holds this key's outcome:
                    # return it without re-running anything
                    self._m_dedup.inc()
                    return self._replayed_submission(jid, entry)
                live = self._jid_subs.get(jid)
                if live is not None and not live.future.done():
                    self._m_dedup.inc()
                    return live
                if entry is not None:
                    # journaled but unsettled with no live handle
                    # (restart without recover()): resubmit from the
                    # *journaled* entry under the same jid.  The
                    # caller's payload is ignored — the same rule as
                    # the settled row of the dedupe matrix — so what
                    # re-runs (and what recovery would replay after
                    # another crash) is exactly what was journaled.
                    if entry.target == "instance":
                        # the pinned instance died with the journaling
                        # gateway: settle it not_replayable, mirroring
                        # recover()
                        exc = WorkerDiedError(-1, "not_replayable")
                        self.journal.append_settled(
                            entry.jid,
                            outcome="worker_lost",
                            error=repr(exc),
                            reason="not_replayable",
                        )
                        self._m_recover_not_replayable.inc()
                        return self._replayed_submission(jid, entry)
                    return self._resubmit_entry(entry)
        rid = next(self._rids)
        if isinstance(target, FrozenHandle):
            handle = self._route(tenant)
            jkind, jspec, jfid, jiid = "frozen", None, target.fid, None
            request = m.Submit(
                rid=rid,
                fid=target.fid,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        elif isinstance(target, GraphHandle):
            handle = self._slot(target.wid)
            jkind, jspec, jfid, jiid = "instance", target.spec, None, target.iid
            request = m.Submit(
                rid=rid,
                spec=target.spec,
                iid=target.iid,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        elif isinstance(target, WorkSpec):
            handle = self._route(tenant)
            jkind, jspec, jfid, jiid = "spec", target, None, None
            request = m.Submit(
                rid=rid,
                spec=target,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        else:
            raise GatewayError(
                f"cannot submit {type(target).__name__}: expected a "
                "WorkSpec, GraphHandle, or FrozenHandle"
            )
        if self.journal is not None and jid is None:
            # journaled *before* any state mutates or bytes hit the
            # pipe: a JournalWriteError propagates to the caller with
            # nothing accepted — structured refusal, never silent loss
            jid = self.journal.append_accepted(
                key=idempotency_key,
                target=jkind,
                spec=jspec,
                fid=jfid,
                iid=jiid,
                priority=priority,
                deadline=deadline,
                repeats=repeats,
                tenant=tenant,
            )
        if jid is not None:
            request = replace(request, jid=jid)
        sub = Submission(rid, handle.wid, tenant, request, self._loop)
        if jid is not None:
            sub.jid = jid
            sub.idempotency_key = idempotency_key
            self._jid_subs[jid] = sub
        self._subs[rid] = sub
        handle.inflight.add(rid)
        self._m_submits.inc()
        sub._push("submitted", wid=handle.wid)
        self._send(handle, request)
        if hedge_after is not None:
            if isinstance(hedge_after, str):
                if hedge_after not in ("p95", "auto"):
                    raise GatewayError(
                        f"hedge_after={hedge_after!r}: expected a float "
                        "delay or 'p95'"
                    )
                delay = self._health[handle.wid].settle_quantile(0.95)
            else:
                delay = float(hedge_after)
            self._loop.call_later(max(0.0, delay), self._maybe_hedge, sub)
        return sub

    def _maybe_hedge(self, sub: Submission) -> None:
        """The hedge timer fired: if the primary is still out, launch
        a duplicate leg on the healthiest *other* routable worker."""
        if (
            sub.future.done()
            or sub.cancel_requested
            or self._draining
            or self._closing
            or len(sub.rids) > 1  # already hedged or rerouted
        ):
            return
        primary_wid = sub.legs.get(sub.rid, sub.wid)
        target = self._healthiest(exclude={primary_wid})
        if target is None:
            self._m_hedge_no_target.inc()
            return
        rid2 = next(self._rids)
        request = replace(sub.request, rid=rid2)
        sub.rids.add(rid2)
        sub.legs[rid2] = target.wid
        sub.hedge_rids.add(rid2)
        self._subs[rid2] = sub
        target.inflight.add(rid2)
        self._m_hedge_launched.inc()
        sub._push("hedged", wid=target.wid)
        self._send(target, request)

    def _replayed_submission(self, jid: int, entry: JournalEntry) -> Submission:
        """An already-resolved Submission carrying *entry*'s journaled
        settlement — what a deduped idempotency key returns."""
        s = entry.settled or {}
        sub = Submission(
            next(self._rids), s.get("wid", -1), entry.tenant, None, self._loop
        )
        sub.jid = jid
        sub.idempotency_key = entry.key
        sub.journal_settled = True
        sub.accepted = True
        result = Result(
            outcome=s.get("outcome", "failed"),
            passes=s.get("passes", 0),
            error=s.get("error", ""),
            reason=s.get("reason", ""),
            wall_s=s.get("wall_s", 0.0),
            wid=s.get("wid", -1),
            replans=s.get("replans", 0),
        )
        sub._push("settled", outcome=result.outcome, wid=result.wid, replayed=True)
        sub._close_events()
        sub.future.set_result(result)
        return sub

    async def recover(self) -> RecoveryReport:
        """Replay the journal after a crash: re-ship frozen fids,
        resubmit unsettled spec/frozen entries to the fresh pool, and
        settle pinned-instance entries ``worker_lost`` /
        ``reason="not_replayable"`` (their worker-local graph state
        died with the old process — the cross-process form of the PR 8
        taint rule).  After this returns, every journaled submission is
        either settled or live in flight: exactly one settlement each.

        Call it once, right after :meth:`start`, on a gateway whose
        ``journal=`` points at the crashed instance's log
        (``repro serve --journal PATH`` does both).
        """
        if self.journal is None:
            raise GatewayError(
                "recover() requires a journal (Gateway(journal=...))"
            )
        self._check_open()
        report = RecoveryReport()
        # 1. frozen topologies first: journaled fid-submissions replay
        #    against them, and pipe FIFO guarantees the Freeze lands
        #    before any resubmitted Submit
        for fid in sorted(self.journal.frozen_specs):
            if fid in self._frozen:
                continue
            spec = self.journal.frozen_specs[fid]
            acks = []
            for handle in self._workers:
                if handle is None or handle.dead:
                    continue
                rid = next(self._rids)
                fut = self._loop.create_future()
                self._pending[rid] = fut
                self._send(handle, m.Freeze(rid=rid, fid=fid, spec=spec))
                acks.append(fut)
            replies = await asyncio.gather(*acks)
            bad = [r for r in replies if not r.ok]
            if bad:
                raise GatewayError(
                    f"recover: re-freeze of fid {fid} failed on "
                    f"{len(bad)} worker(s): {bad[0].error}"
                )
            self._frozen[fid] = spec
            report.frozen_reshipped += 1
            self._m_recover_frozen.inc()
        # 2. unsettled entries: resubmit what is replayable, settle
        #    what is not — never leave a journaled acceptance dangling
        for entry in self.journal.unsettled():
            if entry.jid in self._jid_subs:
                continue  # already live (client raced us via its key)
            if entry.target == "instance":
                exc = WorkerDiedError(-1, "not_replayable")
                self.journal.append_settled(
                    entry.jid,
                    outcome="worker_lost",
                    error=repr(exc),
                    reason="not_replayable",
                )
                report.not_replayable += 1
                self._m_recover_not_replayable.inc()
                continue
            sub = self._resubmit_entry(entry)
            report.resubmitted += 1
            report.jids.append(entry.jid)
            report.submissions.append(sub)
            self._m_recover_resubmitted.inc()
        return report

    def _resubmit_entry(self, entry: JournalEntry) -> Submission:
        """Resubmit one journaled-but-unsettled entry under its
        original jid (a fresh rid, a fresh worker)."""
        rid = next(self._rids)
        handle = self._route(entry.tenant)
        request = m.Submit(
            rid=rid,
            spec=entry.spec if entry.target == "spec" else None,
            fid=entry.fid if entry.target == "frozen" else None,
            repeats=entry.repeats,
            priority=entry.priority,
            deadline=entry.deadline,
            tenant=entry.tenant,
            jid=entry.jid,
        )
        sub = Submission(rid, handle.wid, entry.tenant, request, self._loop)
        sub.jid = entry.jid
        sub.idempotency_key = entry.key
        self._subs[rid] = sub
        self._jid_subs[entry.jid] = sub
        handle.inflight.add(rid)
        self._m_submits.inc()
        sub._push("resubmitted", wid=handle.wid, jid=entry.jid)
        self._send(handle, request)
        return sub

    def cancel(self, sub: Submission) -> bool:
        """Request cooperative cancellation of *sub* (every leg);
        False when it is already settled (or unknown)."""
        if sub.future.done() or not any(r in self._subs for r in sub.rids):
            return False
        sub.cancel_requested = True
        self._m_cancels.inc()
        for rid in list(sub.rids):
            wid = sub.legs.get(rid, sub.wid)
            handle = self._workers[wid] if 0 <= wid < self.num_workers else None
            if handle is not None and not handle.dead:
                self._send(handle, m.Cancel(rid=rid))
        return True

    async def verify(self, gh: GraphHandle, passes: int):
        """Oracle-check a generated instance on its worker; returns the
        violation tuple (empty = clean).  A tainted handle (its worker
        died) verifies vacuously."""
        if gh.tainted:
            return ()
        handle = self._workers[gh.wid]
        if handle is None or handle.dead:
            return ()
        rid = next(self._rids)
        fut = self._loop.create_future()
        self._pending[rid] = fut
        self._send(handle, m.Verify(rid=rid, iid=gh.iid, passes=passes))
        reply = await fut
        return tuple(reply.violations)

    async def worker_metrics(self) -> Dict[int, dict]:
        """Pull a full metrics snapshot from every live worker."""
        acks = {}
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.MetricsPull(rid=rid))
            acks[handle.wid] = fut
        out: Dict[int, dict] = {}
        for wid, fut in acks.items():
            try:
                reply = await asyncio.wait_for(fut, 30.0)
            except asyncio.TimeoutError:  # pragma: no cover - wedged
                continue
            out[wid] = dict(reply.snapshot)
        return out

    def snapshot(self) -> dict:
        """The gateway's own ``gateway.*`` metric snapshot."""
        return self.metrics.snapshot()

    def health_snapshot(self) -> Dict[int, dict]:
        """Per-slot health + breaker view (operator surface, soak)."""
        now = time.monotonic()
        out: Dict[int, dict] = {}
        for wid in range(self.num_workers):
            b = self._breakers[wid]
            snap = self._health[wid].snapshot(now)
            snap["breaker"] = b.state
            snap["breaker_cooldown_s"] = round(b.remaining_cooldown(now), 4)
            snap["breaker_opened_total"] = b.opened_total
            snap["breaker_closed_total"] = b.closed_total
            out[wid] = snap
        return out

    def inject_chaos(self, wid: int, *, stall_s: float = 0.0, spin_s: float = 0.0) -> None:
        """Wedge worker *wid*'s recv loop (deterministic gray-failure
        injection — the soak's stall trigger; docs/gateway.md)."""
        handle = self._slot(wid)
        if handle.dead:
            raise GatewayError(f"worker {wid} is dead; nothing to wedge")
        self._send(handle, m.ChaosInject(stall_s=stall_s, spin_s=spin_s))

    @property
    def retry_budget(self) -> RetryBudget:
        """The gateway-wide retry token bucket (read-mostly surface)."""
        return self._retry_budget

    def _check_open(self) -> None:
        if not self._started or self._loop is None:
            raise GatewayError("gateway is not started")
        if self._draining or self._closing:
            raise GatewayError("gateway is draining; submission refused")

    # -- drain / shutdown ---------------------------------------------
    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and settle every outstanding awaitable.

        Each worker runs its own ``Executor.drain`` (the PR 5
        guarantee: every worker-side future settles), and the results
        stream back as ordinary Settled messages.  The whole call —
        worker acks *plus* straggler Settled traffic — shares one
        deadline of *timeout* + ``drain_grace``; anything unsettled at
        the deadline (a dead pipe, a wedged worker) is force-settled
        with a structured ``failed`` result.  Returns True when
        everything settled in time.
        """
        self._draining = True
        deadline = (
            None
            if timeout is None
            else time.monotonic() + timeout + self.drain_grace
        )

        def remaining() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - time.monotonic())

        acks = []
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.Drain(rid=rid, timeout=timeout))
            acks.append(fut)
        ok = True
        if acks:
            done, pending = await asyncio.wait(acks, timeout=remaining())
            ok = not pending and all(f.result().ok for f in done)
        # worker drains settle worker-side futures; wait for the
        # corresponding Settled traffic to land — on the *same*
        # deadline, not a fresh grace on top of the ack wait
        waiters = {s.future for s in self._subs.values()}
        if waiters:
            _, unsettled = await asyncio.wait(waiters, timeout=remaining())
            if unsettled:
                ok = False
        for sub in list({id(s): s for s in self._subs.values()}.values()):
            self._force_settle(
                sub,
                outcome="failed",
                error="GatewayError('gateway drain timed out')",
                reason="drain_timeout",
            )
        return ok

    async def shutdown(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Graceful teardown: drain, stop the monitor, stop workers.

        Idempotent; never strands an awaitable — anything unresolved
        after worker teardown settles with a ``worker_lost`` result.
        """
        if self._closing:
            return
        try:
            await self.drain(drain_timeout)
        finally:
            self._closing = True
            if self._monitor_task is not None:
                self._monitor_task.cancel()
            for handle in self._workers:
                if handle is None or handle.dead:
                    continue
                self._send(handle, m.Shutdown())
            procs = [
                h.proc
                for h in self._workers
                if h is not None and h.proc.is_alive()
            ]

            def _join_all() -> None:
                deadline = time.monotonic() + 10.0
                for p in procs:
                    p.join(max(0.1, deadline - time.monotonic()))
                for p in procs:
                    if p.is_alive():
                        p.kill()
                        p.join(5.0)

            await asyncio.to_thread(_join_all)
            for handle in self._workers:
                if handle is None:
                    continue
                handle.dead = True
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
            for sub in list({id(s): s for s in self._subs.values()}.values()):
                self._force_settle(
                    sub,
                    outcome="worker_lost",
                    error="GatewayError('gateway shut down')",
                    reason="shutdown",
                )
            for fut in self._pending.values():
                if not fut.done():
                    fut.cancel()
            self._pending.clear()
            if self.journal is not None:
                self.journal.close()


__all__ = [
    "Gateway",
    "GraphHandle",
    "FrozenHandle",
    "RecoveryReport",
    "Result",
    "Submission",
]
