"""Asyncio multiprocess gateway: submission front-end + worker pool.

The tier above the single-process service layer (docs/gateway.md).  A
:class:`Gateway` owns N **spawned worker processes** — each hosting a
full :class:`repro.core.Executor` with its own simulated device group,
admission controller, and metrics registry — and multiplexes an
asyncio submission API over a pickle-framed pipe per worker:

- :meth:`Gateway.submit` routes a :class:`~repro.gateway.spec.WorkSpec`
  (or a pinned instance / frozen handle) to a worker and returns an
  awaitable :class:`Submission` whose ``async for`` side streams
  structured progress events;
- :meth:`Gateway.freeze` ships a spec to every worker once; later
  submissions replay by ``fid``, so the PR 6 compiled-plan fast path
  survives the process boundary;
- a **monitor task** heartbeats every worker, detects dead or
  heartbeat-silent processes, respawns a replacement into the same
  slot, and resolves the casualties' in-flight submissions through the
  replan path (resubmit once to the replacement; a second loss settles
  with a structured ``worker_lost`` outcome);
- :meth:`Gateway.drain` / :meth:`Gateway.shutdown` compose the PR 5
  per-executor guarantees across the pool, so every awaitable settles.

The architecture follows vLLM's ``MultiprocessingGPUExecutor`` /
``DistributedGPUExecutor`` split and StarPU's driver-per-device worker
model: an asyncio front-end that fans control-plane messages out to
per-device worker processes, with a result handler and worker monitor
feeding completions back into the event loop.

Everything is observable through the ``gateway.*`` metrics cataloged
in docs/observability.md: ``gateway.workers_alive``,
``gateway.submits`` / ``gateway.cancels`` / ``gateway.settled``,
``gateway.worker_deaths`` / ``gateway.respawns`` /
``gateway.replans``, and the ``gateway.round_trip_seconds`` histogram.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Union

from repro.errors import GatewayError, WorkerDiedError
from repro.gateway import messages as m
from repro.gateway.spec import WorkSpec
from repro.gateway.worker import WorkerConfig, worker_main
from repro.metrics.registry import MetricsRegistry

#: how long Gateway.start waits for every worker's Ready
_READY_TIMEOUT = 60.0
#: grace period after drain for straggler Settled messages
_DRAIN_GRACE = 5.0
#: missed-heartbeat budget before a silent worker is declared dead
_HEARTBEAT_MISSES = 20


@dataclass(frozen=True)
class Result:
    """Terminal outcome of one gateway submission.

    Every submission settles with exactly one Result — the gateway
    never strands an awaitable.  ``outcome`` is one of
    :data:`repro.gateway.messages.OUTCOMES`; ``ok`` is sugar for
    ``outcome == "completed"``.
    """

    outcome: str
    passes: int = 0
    error: str = ""
    reason: str = ""
    wall_s: float = 0.0
    wid: int = -1
    replans: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == "completed"


class Submission:
    """Awaitable handle for one gateway submission.

    ``await sub`` yields the :class:`Result`; ``async for ev in
    sub.events()`` streams structured progress dicts (``submitted``,
    ``accepted``, ``replanned``, ``settled``) and terminates once the
    submission settles.
    """

    def __init__(self, rid: int, wid: int, tenant: str, request: m.Submit, loop) -> None:
        self.rid = rid
        self.wid = wid
        self.tenant = tenant
        self.request = request
        self.replans = 0
        self.cancel_requested = False
        self.accepted = False
        self.t0 = time.monotonic()
        self.future: asyncio.Future = loop.create_future()
        self._events: asyncio.Queue = asyncio.Queue()

    def __await__(self):
        return self.future.__await__()

    def done(self) -> bool:
        return self.future.done()

    async def events(self) -> AsyncIterator[dict]:
        """Async iterator over this submission's progress events."""
        while True:
            ev = await self._events.get()
            if ev is None:
                return
            yield ev

    def _push(self, kind: str, **fields) -> None:
        ev = {"kind": kind, "rid": self.rid}
        ev.update(fields)
        self._events.put_nowait(ev)

    def _close_events(self) -> None:
        self._events.put_nowait(None)


@dataclass
class GraphHandle:
    """A spec pinned to one worker slot: repeated submissions reuse the
    worker-local graph instance (join counters and spans live there).
    A worker death re-materializes the instance on the replacement and
    marks the handle *tainted* — oracle verification across the death
    would be meaningless."""

    iid: int
    spec: WorkSpec
    wid: int
    tainted: bool = False


@dataclass(frozen=True)
class FrozenHandle:
    """A spec frozen on every worker under one gateway-wide ``fid``."""

    fid: int
    spec: WorkSpec


class _WorkerHandle:
    """Gateway-side state for one worker slot occupant."""

    __slots__ = (
        "wid",
        "proc",
        "conn",
        "reader",
        "ready",
        "ready_event",
        "dead",
        "last_pong",
        "inflight",
    )

    def __init__(self, wid: int, proc, conn, loop) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.reader: Optional[threading.Thread] = None
        self.ready = False
        self.ready_event = asyncio.Event()
        self.dead = False
        self.last_pong = time.monotonic()
        self.inflight: set = set()


class Gateway:
    """Asyncio front-end over a pool of executor worker processes."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        worker: Optional[WorkerConfig] = None,
        heartbeat_interval: float = 0.25,
        max_replans: int = 1,
        name: str = "gateway",
    ) -> None:
        if num_workers < 1:
            raise GatewayError("gateway needs at least one worker")
        self.name = name
        self.num_workers = num_workers
        self.worker_config = worker or WorkerConfig()
        self.heartbeat_interval = heartbeat_interval
        self.max_replans = max_replans
        self._ctx = multiprocessing.get_context("spawn")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: List[Optional[_WorkerHandle]] = [None] * num_workers
        self._subs: Dict[int, Submission] = {}
        self._pending: Dict[int, asyncio.Future] = {}
        self._frozen: Dict[int, WorkSpec] = {}
        self._instances: Dict[int, GraphHandle] = {}
        self._rids = itertools.count(1)
        self._fids = itertools.count(1)
        self._iids = itertools.count(1)
        self._rr = itertools.count()
        self._ping_seq = itertools.count(1)
        self._draining = False
        self._closing = False
        self._started = False
        self._monitor_task: Optional[asyncio.Task] = None

        # gateway.* metrics (docs/observability.md, "Gateway counters")
        self.metrics = MetricsRegistry()
        self._m_submits = self.metrics.counter("gateway.submits")
        self._m_cancels = self.metrics.counter("gateway.cancels")
        self._m_settled = self.metrics.counter("gateway.settled")
        self._m_deaths = self.metrics.counter("gateway.worker_deaths")
        self._m_respawns = self.metrics.counter("gateway.respawns")
        self._m_replans = self.metrics.counter("gateway.replans")
        self._m_rt = self.metrics.histogram("gateway.round_trip_seconds")
        self.metrics.register_callback(
            "gateway.workers_alive", self._workers_alive
        )
        self.metrics.register_callback(
            "gateway.inflight", lambda: len(self._subs)
        )

    # -- lifecycle -----------------------------------------------------
    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def start(self) -> None:
        """Spawn the worker pool and wait for every Ready."""
        if self._started:
            raise GatewayError("gateway already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        for wid in range(self.num_workers):
            self._workers[wid] = self._spawn(wid)
        await self._wait_ready()
        self._monitor_task = asyncio.create_task(
            self._monitor(), name=f"{self.name}-monitor"
        )

    def _spawn(self, wid: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, child_conn, self.worker_config),
            name=f"{self.name}-worker{wid}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(wid, proc, parent_conn, self._loop)
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"{self.name}-reader{wid}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    async def _wait_ready(self) -> None:
        waits = [
            h.ready_event.wait() for h in self._workers if h is not None
        ]
        try:
            await asyncio.wait_for(asyncio.gather(*waits), _READY_TIMEOUT)
        except asyncio.TimeoutError:
            raise GatewayError(
                "gateway workers did not come up within "
                f"{_READY_TIMEOUT:.0f}s"
            ) from None

    def _workers_alive(self) -> int:
        return sum(
            1
            for h in self._workers
            if h is not None and not h.dead and h.proc.is_alive()
        )

    # -- pipe plumbing -------------------------------------------------
    def _read_loop(self, handle: _WorkerHandle) -> None:
        """Reader thread: pump one worker's pipe into the event loop."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._on_message, handle, msg)
            except RuntimeError:  # loop closed during teardown
                return
        try:
            self._loop.call_soon_threadsafe(self._on_pipe_closed, handle)
        except RuntimeError:
            pass

    def _send(self, handle: _WorkerHandle, msg) -> None:
        try:
            handle.conn.send(msg)
        except (OSError, ValueError, BrokenPipeError):
            self._worker_died(handle, "pipe")

    def _on_pipe_closed(self, handle: _WorkerHandle) -> None:
        if not self._closing:
            self._worker_died(handle, "pipe")

    def _on_message(self, handle: _WorkerHandle, msg) -> None:
        if isinstance(msg, m.Settled):
            self._on_settled(handle, msg)
        elif isinstance(msg, m.Accepted):
            sub = self._subs.get(msg.rid)
            if sub is not None:
                sub.accepted = True
                sub._push("accepted", wid=msg.wid)
        elif isinstance(msg, m.Pong):
            handle.last_pong = time.monotonic()
        elif isinstance(msg, m.Ready):
            if msg.protocol != m.PROTOCOL_VERSION:  # pragma: no cover
                self._worker_died(handle, "protocol")
                return
            handle.ready = True
            handle.ready_event.set()
        elif isinstance(msg, (m.Frozen, m.Drained, m.MetricsReply, m.Verified)):
            fut = self._pending.pop(msg.rid, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif isinstance(msg, m.EventMsg):
            if msg.rid is not None:
                sub = self._subs.get(msg.rid)
                if sub is not None:
                    sub._push(msg.kind, **msg.fields)

    def _on_settled(self, handle: _WorkerHandle, msg: m.Settled) -> None:
        sub = self._subs.pop(msg.rid, None)
        handle.inflight.discard(msg.rid)
        if sub is None or sub.future.done():
            return
        self._m_settled.inc()
        self._m_rt.observe(time.monotonic() - sub.t0)
        result = Result(
            outcome=msg.outcome,
            passes=msg.passes,
            error=msg.error,
            reason=msg.reason,
            wall_s=msg.wall_s,
            wid=handle.wid,
            replans=sub.replans,
        )
        sub._push("settled", outcome=msg.outcome, wid=handle.wid)
        sub._close_events()
        sub.future.set_result(result)

    def _force_settle(self, sub: Submission, outcome: str, error: str, reason: str = "") -> None:
        """Settle a submission gateway-side (worker loss, shutdown)."""
        self._subs.pop(sub.rid, None)
        if sub.future.done():
            return
        self._m_settled.inc()
        self._m_rt.observe(time.monotonic() - sub.t0)
        sub._push("settled", outcome=outcome, wid=sub.wid)
        sub._close_events()
        sub.future.set_result(
            Result(
                outcome=outcome,
                error=error,
                reason=reason,
                wall_s=time.monotonic() - sub.t0,
                wid=sub.wid,
                replans=sub.replans,
            )
        )

    # -- worker failure handling (docs/gateway.md) ---------------------
    def _worker_died(self, handle: _WorkerHandle, reason: str) -> None:
        """Reap one dead/silent worker: respawn a replacement into the
        slot, replay its in-flight submissions once, settle the rest
        with structured ``worker_lost`` results."""
        if handle.dead:
            return
        handle.dead = True
        self._m_deaths.inc()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        casualties = sorted(handle.inflight)
        handle.inflight.clear()

        replacement: Optional[_WorkerHandle] = None
        if not self._closing:
            replacement = self._spawn(handle.wid)
            self._workers[handle.wid] = replacement
            self._m_respawns.inc()
            # frozen topologies ship to the replacement before any
            # replayed submission (pipe FIFO preserves the order)
            for fid, spec in self._frozen.items():
                self._send(
                    replacement, m.Freeze(rid=next(self._rids), fid=fid, spec=spec)
                )
            # worker-local graph instances died with the process: the
            # replacement rebuilds them on first use, but their oracle
            # state is gone — taint them for verification purposes
            for gh in self._instances.values():
                if gh.wid == handle.wid:
                    gh.tainted = True

        for rid in casualties:
            sub = self._subs.get(rid)
            if sub is None:
                continue
            exc = WorkerDiedError(handle.wid, reason)
            if (
                replacement is None
                or sub.cancel_requested
                or sub.replans >= self.max_replans
            ):
                self._force_settle(
                    sub,
                    outcome="cancelled" if sub.cancel_requested else "worker_lost",
                    error=repr(exc),
                    reason=reason,
                )
                continue
            # the resilience replan path, one tier up: re-materialize
            # the idempotent spec on the replacement and resubmit
            sub.replans += 1
            self._m_replans.inc()
            sub._push("replanned", wid=handle.wid, reason=reason)
            replacement.inflight.add(rid)
            self._send(replacement, sub.request)

    async def _monitor(self) -> None:
        """Heartbeat every worker; reap the dead and the silent."""
        misses = _HEARTBEAT_MISSES
        while not self._closing:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for handle in list(self._workers):
                if handle is None or handle.dead:
                    continue
                if not handle.proc.is_alive():
                    self._worker_died(handle, "exited")
                    continue
                # a draining worker legitimately blocks in drain();
                # only liveness (is_alive) applies then
                if (
                    not self._draining
                    and now - handle.last_pong
                    > misses * self.heartbeat_interval
                ):
                    self._worker_died(handle, "heartbeat")
                    continue
                self._send(handle, m.Ping(seq=next(self._ping_seq)))

    # -- routing -------------------------------------------------------
    def _slot(self, wid: int) -> _WorkerHandle:
        handle = self._workers[wid]
        if handle is None:  # pragma: no cover - slots filled at start
            raise GatewayError(f"worker slot {wid} is empty")
        return handle

    def _route(self, tenant: str) -> _WorkerHandle:
        if tenant:
            wid = zlib.crc32(tenant.encode()) % self.num_workers
        else:
            wid = next(self._rr) % self.num_workers
        return self._slot(wid)

    # -- public API ----------------------------------------------------
    def instance(self, spec: WorkSpec, *, tenant: str = "") -> GraphHandle:
        """Pin *spec* to one worker: repeated submissions of the handle
        share the worker-local graph (the stacking/verification shape
        of the soak harness)."""
        self._check_open()
        handle = self._route(tenant)
        gh = GraphHandle(iid=next(self._iids), spec=spec, wid=handle.wid)
        self._instances[gh.iid] = gh
        return gh

    async def freeze(self, spec: WorkSpec) -> FrozenHandle:
        """Freeze *spec* on every worker; returns the replay handle."""
        self._check_open()
        fid = next(self._fids)
        acks = []
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.Freeze(rid=rid, fid=fid, spec=spec))
            acks.append(fut)
        replies = await asyncio.gather(*acks)
        bad = [r for r in replies if not r.ok]
        if bad:
            raise GatewayError(
                f"freeze failed on {len(bad)} worker(s): {bad[0].error}"
            )
        self._frozen[fid] = spec
        return FrozenHandle(fid=fid, spec=spec)

    def submit(
        self,
        target: Union[WorkSpec, GraphHandle, FrozenHandle],
        *,
        tenant: str = "",
        priority: int = 0,
        deadline: Optional[float] = None,
        repeats: int = 1,
    ) -> Submission:
        """Submit one workload; returns the awaitable handle.

        *target* is a :class:`~repro.gateway.spec.WorkSpec` (one-shot,
        routed by *tenant* hash or round-robin), a
        :class:`GraphHandle` (pinned to its worker), or a
        :class:`FrozenHandle` (replayed by ``fid`` on any worker).
        *priority* and *deadline* pass through to the worker-side
        executor unchanged (docs/runtime.md, "Submission lifecycle").
        """
        self._check_open()
        rid = next(self._rids)
        if isinstance(target, FrozenHandle):
            handle = self._route(tenant)
            request = m.Submit(
                rid=rid,
                fid=target.fid,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        elif isinstance(target, GraphHandle):
            handle = self._slot(target.wid)
            request = m.Submit(
                rid=rid,
                spec=target.spec,
                iid=target.iid,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        elif isinstance(target, WorkSpec):
            handle = self._route(tenant)
            request = m.Submit(
                rid=rid,
                spec=target,
                repeats=repeats,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
        else:
            raise GatewayError(
                f"cannot submit {type(target).__name__}: expected a "
                "WorkSpec, GraphHandle, or FrozenHandle"
            )
        sub = Submission(rid, handle.wid, tenant, request, self._loop)
        self._subs[rid] = sub
        handle.inflight.add(rid)
        self._m_submits.inc()
        sub._push("submitted", wid=handle.wid)
        self._send(handle, request)
        return sub

    def cancel(self, sub: Submission) -> bool:
        """Request cooperative cancellation of *sub*; False when it is
        already settled (or unknown)."""
        if sub.rid not in self._subs or sub.future.done():
            return False
        sub.cancel_requested = True
        self._m_cancels.inc()
        handle = self._workers[sub.wid]
        if handle is not None and not handle.dead:
            self._send(handle, m.Cancel(rid=sub.rid))
        return True

    async def verify(self, gh: GraphHandle, passes: int):
        """Oracle-check a generated instance on its worker; returns the
        violation tuple (empty = clean).  A tainted handle (its worker
        died) verifies vacuously."""
        if gh.tainted:
            return ()
        handle = self._workers[gh.wid]
        if handle is None or handle.dead:
            return ()
        rid = next(self._rids)
        fut = self._loop.create_future()
        self._pending[rid] = fut
        self._send(handle, m.Verify(rid=rid, iid=gh.iid, passes=passes))
        reply = await fut
        return tuple(reply.violations)

    async def worker_metrics(self) -> Dict[int, dict]:
        """Pull a full metrics snapshot from every live worker."""
        acks = {}
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.MetricsPull(rid=rid))
            acks[handle.wid] = fut
        out: Dict[int, dict] = {}
        for wid, fut in acks.items():
            try:
                reply = await asyncio.wait_for(fut, 30.0)
            except asyncio.TimeoutError:  # pragma: no cover - wedged
                continue
            out[wid] = dict(reply.snapshot)
        return out

    def snapshot(self) -> dict:
        """The gateway's own ``gateway.*`` metric snapshot."""
        return self.metrics.snapshot()

    def _check_open(self) -> None:
        if not self._started or self._loop is None:
            raise GatewayError("gateway is not started")
        if self._draining or self._closing:
            raise GatewayError("gateway is draining; submission refused")

    # -- drain / shutdown ---------------------------------------------
    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and settle every outstanding awaitable.

        Each worker runs its own ``Executor.drain`` (the PR 5
        guarantee: every worker-side future settles), and the results
        stream back as ordinary Settled messages.  Anything still
        unsettled after *timeout* + a short grace (a dead pipe, a
        wedged worker) is force-settled with a structured ``failed``
        result.  Returns True when everything settled in time.
        """
        self._draining = True
        acks = []
        for handle in self._workers:
            if handle is None or handle.dead:
                continue
            rid = next(self._rids)
            fut = self._loop.create_future()
            self._pending[rid] = fut
            self._send(handle, m.Drain(rid=rid, timeout=timeout))
            acks.append(fut)
        ok = True
        budget = None if timeout is None else timeout + _DRAIN_GRACE
        if acks:
            done, pending = await asyncio.wait(acks, timeout=budget)
            ok = not pending and all(f.result().ok for f in done)
        # worker drains settle worker-side futures; wait for the
        # corresponding Settled traffic to land
        waiters = [s.future for s in self._subs.values()]
        if waiters:
            _, unsettled = await asyncio.wait(
                waiters, timeout=_DRAIN_GRACE if timeout is not None else None
            )
            if unsettled:
                ok = False
        for sub in list(self._subs.values()):
            self._force_settle(
                sub,
                outcome="failed",
                error="GatewayError('gateway drain timed out')",
                reason="drain_timeout",
            )
        return ok

    async def shutdown(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Graceful teardown: drain, stop the monitor, stop workers.

        Idempotent; never strands an awaitable — anything unresolved
        after worker teardown settles with a ``worker_lost`` result.
        """
        if self._closing:
            return
        try:
            await self.drain(drain_timeout)
        finally:
            self._closing = True
            if self._monitor_task is not None:
                self._monitor_task.cancel()
            for handle in self._workers:
                if handle is None or handle.dead:
                    continue
                self._send(handle, m.Shutdown())
            procs = [
                h.proc
                for h in self._workers
                if h is not None and h.proc.is_alive()
            ]

            def _join_all() -> None:
                deadline = time.monotonic() + 10.0
                for p in procs:
                    p.join(max(0.1, deadline - time.monotonic()))
                for p in procs:
                    if p.is_alive():
                        p.kill()
                        p.join(5.0)

            await asyncio.to_thread(_join_all)
            for handle in self._workers:
                if handle is None:
                    continue
                handle.dead = True
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
            for sub in list(self._subs.values()):
                self._force_settle(
                    sub,
                    outcome="worker_lost",
                    error="GatewayError('gateway shut down')",
                    reason="shutdown",
                )
            for fut in self._pending.values():
                if not fut.done():
                    fut.cancel()
            self._pending.clear()


__all__ = [
    "Gateway",
    "GraphHandle",
    "FrozenHandle",
    "Result",
    "Submission",
]
