"""Gateway soak harness: multiprocess serving scenarios + chaos kills.

The multiprocess analogue of :mod:`repro.service.soak`: where that
harness races submitter *threads* against one in-process executor,
this one races asynchronous *tenants* against a shared
:class:`~repro.gateway.Gateway` — a pool of spawned worker processes,
each with its own executor and bounded admission controller.  One
gateway serves the whole sweep (spawning a pool per scenario would
measure process start-up, not serving behaviour).

Each scenario mixes, per tenant: pinned generated-graph instances
(seeded, carrying the host-replay oracle), frozen burst replays (the
PR 6 fast path across the process boundary), one-shot corpus flows,
random priorities, deadlines armed to fire and deadlines that never
will, and racy caller cancels.  Every ``kill_every``-th scenario also
**SIGKILLs a live worker mid-flight** and measures how long the
monitor takes to respawn the slot.

Scenario checks:

1. **Reconciliation** — every submission settles with exactly one
   terminal outcome (``submitted == sum over outcome classes``); the
   gateway's own ``gateway.submits`` / ``gateway.settled`` counters
   must agree with the harness's count *exactly*; a submission still
   pending after the settle sweep is a stranded awaitable and a
   violation.
2. **Failure accounting** — ``worker_lost`` and ``failed`` outcomes
   are violations except in kill scenarios, where ``worker_lost`` is
   the documented post-replan residue.
3. **Oracle** — pinned generated instances whose every submission
   completed on an unkilled worker must verify bit-identically against
   the generator's host-side replay (:class:`repro.gateway.messages.Verify`
   round trip).

The sweep ends with a throughput comparison — frozen burst replays
through the full pool vs. a single in-process executor of one
worker's shape — reported with the host's CPU count, since the
speedup is meaningless without it.  ``python -m repro soak --gateway
--json`` writes the whole report with schema
:data:`GATEWAY_SOAK_SCHEMA` (the CI artifact
``BENCH_gateway_soak.json``).

:func:`run_gateway_gray_soak` (``--gray``) is the gray-failure
variant: deterministic recv-loop stalls that must breaker-eject and
re-admit (never kill), hedged submissions racing wedged primaries,
and a retry-budget exhaustion drill — schema
:data:`GATEWAY_GRAY_SOAK_SCHEMA` (``BENCH_gateway_gray_soak.json``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.gateway.gateway import Gateway, GraphHandle, Submission
from repro.gateway.messages import OUTCOMES
from repro.gateway.spec import BuiltinSpec, BurstSpec, GeneratedSpec
from repro.gateway.worker import WorkerConfig
from repro.resilience import RetryBudget
from repro.service.soak import _percentiles
from repro.utils.rng import derive_seed

#: schema identifier of the serialized report; bump on layout changes
GATEWAY_SOAK_SCHEMA = "repro.gateway-soak-report/1"

#: schema of the gray-failure soak report (``soak --gateway --gray``)
GATEWAY_GRAY_SOAK_SCHEMA = "repro.gateway-gray-soak-report/1"

#: per-scenario settle deadline — an unresolved awaitable past this is
#: a stranded-submission violation
_SETTLE_TIMEOUT = 120.0

#: how long a killed worker slot may take to come back
_RESPAWN_TIMEOUT = 30.0


@dataclass
class GatewayScenario:
    """One executed gateway soak scenario."""

    index: int
    seed: int
    tenants: int
    killed_wid: int = -1
    respawn_s: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0
    cancels: int = 0
    verified_instances: int = 0
    tainted_instances: int = 0
    wall_latency: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "tenants": self.tenants,
            "killed_wid": self.killed_wid,
            "respawn_s": self.respawn_s,
            "submitted": self.submitted,
            "cancels": self.cancels,
            "counts": {k: self.counts.get(k, 0) for k in OUTCOMES},
            "verified_instances": self.verified_instances,
            "tainted_instances": self.tainted_instances,
            "wall_latency_s": dict(self.wall_latency),
            "violations": list(self.violations),
        }


@dataclass
class GatewaySoakReport:
    """Aggregated outcome of one gateway soak sweep."""

    seed: int
    workers: int
    scenarios: List[GatewayScenario] = field(default_factory=list)
    gateway_counters: Dict[str, float] = field(default_factory=dict)
    throughput: Dict[str, float] = field(default_factory=dict)
    wall_samples: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def totals(self) -> Dict[str, int]:
        out = {k: 0 for k in OUTCOMES}
        for s in self.scenarios:
            for k in OUTCOMES:
                out[k] += s.counts.get(k, 0)
        out["submitted"] = sum(s.submitted for s in self.scenarios)
        out["kills"] = sum(1 for s in self.scenarios if s.killed_wid >= 0)
        return out

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for s in self.scenarios:
            out.extend(f"[#{s.index} seed={s.seed}] {v}" for v in s.violations)
        return out

    def to_dict(self) -> dict:
        return {
            "schema": GATEWAY_SOAK_SCHEMA,
            "seed": self.seed,
            "workers": self.workers,
            "cpu_count": os.cpu_count(),
            "num_scenarios": self.num_scenarios,
            "ok": self.ok,
            "totals": self.totals,
            "gateway_counters": {
                k: v
                for k, v in sorted(self.gateway_counters.items())
                if not isinstance(v, dict)
            },
            "round_trip_s": _percentiles(self.wall_samples),
            "throughput": dict(self.throughput),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


async def _tenant(
    gw: Gateway,
    name: str,
    tseed: int,
    subs: List[Submission],
    instances: List[tuple],
    frozen_pool: list,
    cancels: List[int],
) -> None:
    """One tenant's scenario traffic: pinned instances, frozen replays,
    one-shot corpus flows, deadlines, and racy cancels."""
    rng = random.Random(tseed)
    for g in range(rng.randint(2, 3)):
        roll = rng.random()
        if roll < 0.45:
            # pinned generated instance: the oracle-bearing shape
            gseed = derive_seed(tseed, "graph", g) % (1 << 31)
            gh = gw.instance(
                GeneratedSpec(seed=gseed, num_gpus=1), tenant=name
            )
            entry = [gh, 0, True]  # handle, expected passes, all-completed
            instances.append(entry)
            for _ in range(rng.randint(1, 2)):
                repeats = rng.randint(1, 2)
                sub = gw.submit(
                    gh,
                    tenant=name,
                    priority=rng.randint(0, 3),
                    repeats=repeats,
                )
                subs.append(sub)
                res = await sub
                if res.outcome == "completed":
                    entry[1] += res.passes
                else:
                    entry[2] = False
        elif roll < 0.8 and frozen_pool:
            # frozen burst replays, racing concurrently
            fh = rng.choice(frozen_pool)
            batch = [
                gw.submit(fh, tenant=name, priority=rng.randint(0, 3))
                for _ in range(rng.randint(2, 4))
            ]
            subs.extend(batch)
            await asyncio.gather(*(s.future for s in batch))
        else:
            # one-shot workloads with deadline/cancel pressure
            droll = rng.random()
            deadline = 0.003 if droll < 0.2 else 30.0 if droll < 0.4 else None
            sub = gw.submit(
                BuiltinSpec(rng.choice(("saxpy", "timing"))),
                tenant=name,
                priority=rng.randint(0, 3),
                deadline=deadline,
            )
            subs.append(sub)
            if rng.random() < 0.3:
                await asyncio.sleep(rng.random() * 0.004)
                if gw.cancel(sub):
                    cancels.append(sub.rid)
            await asyncio.wait({sub.future})
        if rng.random() < 0.3:
            await asyncio.sleep(rng.random() * 0.01)


async def _run_scenario(
    gw: Gateway,
    index: int,
    seed: int,
    frozen_pool: list,
    kill: bool,
) -> GatewayScenario:
    sseed = derive_seed(seed, "gwsoak", index)
    rng = random.Random(sseed)
    scenario = GatewayScenario(
        index=index,
        seed=sseed % (1 << 31),
        tenants=rng.randint(2, 4),
    )
    before = gw.snapshot()
    subs: List[Submission] = []
    instances: List[tuple] = []
    cancels: List[int] = []
    violations = scenario.violations

    tasks = [
        asyncio.create_task(
            _tenant(
                gw,
                f"tenant-{index}-{tid}",
                derive_seed(sseed, "tenant", tid),
                subs,
                instances,
                frozen_pool,
                cancels,
            )
        )
        for tid in range(scenario.tenants)
    ]

    killer: Optional[asyncio.Task] = None
    if kill:

        async def _kill() -> None:
            await asyncio.sleep(rng.random() * 0.05)
            victim = gw._workers[rng.randrange(gw.num_workers)]
            if victim is None or victim.dead or not victim.proc.is_alive():
                return
            scenario.killed_wid = victim.wid
            t0 = time.monotonic()
            os.kill(victim.proc.pid, signal.SIGKILL)
            while time.monotonic() - t0 < _RESPAWN_TIMEOUT:
                fresh = gw._workers[victim.wid]
                if fresh is not victim and fresh is not None and fresh.ready:
                    scenario.respawn_s = time.monotonic() - t0
                    return
                await asyncio.sleep(0.02)
            violations.append(
                f"worker {victim.wid} not respawned within "
                f"{_RESPAWN_TIMEOUT:.0f}s of SIGKILL"
            )

        killer = asyncio.create_task(_kill())

    try:
        await asyncio.wait_for(asyncio.gather(*tasks), _SETTLE_TIMEOUT)
    except asyncio.TimeoutError:
        violations.append(
            f"scenario did not settle within {_SETTLE_TIMEOUT:.0f}s"
        )
        for t in tasks:
            t.cancel()
    if killer is not None:
        await killer

    await _reconcile(gw, scenario, subs, instances, cancels, before, kill)
    return scenario


async def _reconcile(
    gw: Gateway,
    scenario: GatewayScenario,
    subs: List[Submission],
    instances: List[tuple],
    cancels: List[int],
    before: dict,
    kill: bool,
) -> None:
    """Shared scenario epilogue: exactly-once settle reconciliation,
    gateway-counter agreement, and the pinned-instance oracle."""
    violations = scenario.violations

    # -- reconciliation: every submission settles exactly once --------
    pending = [s for s in subs if not s.done()]
    if pending:
        done, still = await asyncio.wait(
            [s.future for s in pending], timeout=30.0
        )
        if still:
            violations.append(
                f"{len(still)} stranded submission(s) after settle sweep"
            )
    counts = {k: 0 for k in OUTCOMES}
    for sub in subs:
        if sub.done():
            counts[sub.future.result().outcome] += 1
    scenario.counts = counts
    scenario.submitted = len(subs)
    scenario.cancels = len(cancels)
    settled = sum(counts.values())
    if settled != len(subs):
        violations.append(
            f"outcome reconciliation broke: {settled} settled vs "
            f"{len(subs)} submitted"
        )
    if counts["failed"]:
        violations.append(f"{counts['failed']} submission(s) failed")
    if counts["worker_lost"] and not kill:
        violations.append(
            f"{counts['worker_lost']} worker_lost outcome(s) without a kill"
        )

    # gateway counters must agree with the harness exactly
    after = gw.snapshot()
    d_submits = after["gateway.submits"] - before["gateway.submits"]
    if d_submits != len(subs):
        violations.append(
            f"gateway.submits moved by {d_submits}, harness submitted "
            f"{len(subs)}"
        )
    d_settled = after["gateway.settled"] - before["gateway.settled"]
    if d_settled != settled:
        violations.append(
            f"gateway.settled moved by {d_settled}, harness settled {settled}"
        )

    # -- oracle over pinned instances ---------------------------------
    for gh, expected, all_completed in instances:
        if gh.tainted:
            scenario.tainted_instances += 1
            continue
        if not all_completed or expected <= 0:
            continue
        for v in await gw.verify(gh, expected):
            violations.append(f"instance {gh.iid}: {v}")
        scenario.verified_instances += 1

    wall = [
        s.future.result().wall_s
        for s in subs
        if s.done() and s.future.result().wall_s > 0
    ]
    scenario.wall_latency = _percentiles(wall)
    scenario._wall_samples = wall  # type: ignore[attr-defined]


async def _measure_throughput(
    gw: Gateway,
    config: WorkerConfig,
    *,
    repeats: int,
    width: int,
    spin_s: float = 0.002,
) -> Dict[str, float]:
    """Frozen burst replays: the full pool vs. one in-process executor
    of a single worker's shape.

    The burst tasks *spin* (CPU-bound Python): the GIL serializes them
    inside one process no matter how many executor threads it has, but
    worker processes run them truly in parallel — the core claim of
    the gateway.  The ratio still only means something on a multi-core
    host, so the CPU count rides along in the report.

    Replays go out in waves sized to the pool's admission capacity
    (round-robin routing lands exactly ``max_topologies`` per worker
    per wave), so the measurement never trips the reject policy; the
    single-process side runs the same wave shape for a fair baseline.
    """
    from repro.core.executor import Executor

    cap = config.max_topologies or 4
    wave = max(1, gw.num_workers * cap)
    fh = await gw.freeze(BurstSpec(width=width, spin_s=spin_s))
    bad = 0
    t0 = time.monotonic()
    done = 0
    while done < repeats:
        n = min(wave, repeats - done)
        batch = [gw.submit(fh) for _ in range(n)]
        await asyncio.gather(*(s.future for s in batch))
        bad += sum(1 for s in batch if not s.future.result().ok)
        done += n
    gw_wall = time.monotonic() - t0

    hf, _gen = BurstSpec(width=width, spin_s=spin_s).build()
    frozen = hf.freeze()
    ex = Executor(num_workers=config.threads, num_gpus=config.gpus)
    try:

        def run_waves() -> float:
            start = time.monotonic()
            left = repeats
            while left:
                n = min(wave, left)
                futures = [ex.run(frozen) for _ in range(n)]
                for f in futures:
                    f.result(60.0)
                left -= n
            return time.monotonic() - start

        single_wall = await asyncio.to_thread(run_waves)
    finally:
        ex.shutdown(wait=False)

    out = {
        "repeats": float(repeats),
        "burst_width": float(width),
        "spin_s": spin_s,
        "gateway_wall_s": gw_wall,
        "gateway_runs_per_s": repeats / gw_wall if gw_wall else 0.0,
        "single_wall_s": single_wall,
        "single_runs_per_s": repeats / single_wall if single_wall else 0.0,
        "speedup": (single_wall / gw_wall) if gw_wall else 0.0,
        "errors": float(bad),
    }
    return out


async def _run_soak(
    scenarios: int,
    *,
    workers: int,
    seed: int,
    kill_every: int,
    throughput_repeats: int,
    log: Optional[Callable[[str], None]],
) -> GatewaySoakReport:
    config = WorkerConfig(
        threads=2,
        gpus=1,
        max_topologies=4,
        policy="reject",
        seed=seed,
    )
    report = GatewaySoakReport(seed=seed, workers=workers)
    async with Gateway(
        workers, worker=config, heartbeat_interval=0.25
    ) as gw:
        # a small shared pool of frozen shapes, shipped once
        frozen_pool = [
            await gw.freeze(BurstSpec(width=w)) for w in (8, 32)
        ]
        for i in range(scenarios):
            kill = kill_every > 0 and i % kill_every == kill_every - 1
            scenario = await _run_scenario(gw, i, seed, frozen_pool, kill)
            report.scenarios.append(scenario)
            report.wall_samples.extend(
                getattr(scenario, "_wall_samples", ())
            )
            if log is not None:
                c = scenario.counts
                state = "ok" if scenario.ok else "VIOLATION"
                chaos = (
                    f" kill=w{scenario.killed_wid}"
                    f"@{scenario.respawn_s * 1000:.0f}ms"
                    if scenario.killed_wid >= 0
                    else ""
                )
                log(
                    f"  #{scenario.index:>3} seed={scenario.seed:<11} "
                    f"{scenario.tenants}t  {scenario.submitted:>2} submitted "
                    f"{c.get('completed', 0):>2} done "
                    f"{c.get('rejected', 0)} rej {c.get('shed', 0)} shed "
                    f"{c.get('deadline_exceeded', 0)} ddl "
                    f"{c.get('cancelled', 0)} cancel "
                    f"{c.get('worker_lost', 0)} lost{chaos}  {state}"
                )
        if throughput_repeats > 0:
            if log is not None:
                log("  measuring throughput (gateway vs single process)...")
            report.throughput = await _measure_throughput(
                gw, config, repeats=throughput_repeats, width=8
            )
        report.gateway_counters = {
            k: v
            for k, v in gw.snapshot().items()
            if not isinstance(v, dict)
        }
    return report


def run_gateway_soak(
    scenarios: int = 50,
    *,
    workers: int = 4,
    seed: int = 0,
    kill_every: int = 5,
    throughput_repeats: int = 200,
    log: Optional[Callable[[str], None]] = None,
) -> GatewaySoakReport:
    """Sweep *scenarios* serving scenarios against one shared gateway.

    Every ``kill_every``-th scenario SIGKILLs a worker mid-flight
    (``kill_every=0`` disables chaos).  The sweep never raises on
    violations — the caller decides (the CLI exits nonzero, tests
    assert on :attr:`GatewaySoakReport.ok`).
    """
    return asyncio.run(
        _run_soak(
            scenarios,
            workers=workers,
            seed=seed,
            kill_every=kill_every,
            throughput_repeats=throughput_repeats,
            log=log,
        )
    )


# ---------------------------------------------------------------------------
# gray-failure soak (``python -m repro soak --gateway --gray``)
# ---------------------------------------------------------------------------
#
# The kill soak above exercises *black* failures (SIGKILL).  The gray
# soak exercises the PR 9 machinery: deterministic recv-loop stalls
# (ChaosInject) that must be detected as *stalled* — breaker-ejected
# from routing, never killed, and re-admitted once heartbeats resume —
# plus hedged frozen submissions racing wedged primaries, and a
# scripted retry-budget-exhaustion drill.  Same exactly-once
# reconciliation algebra as the kill soak, same counter-agreement
# checks, plus the hedge accounting invariant
# ``launched == wins + losses + dropped``.

#: injected recv-loop stall length — comfortably past the gray
#: gateway's stall window, comfortably under its death budget
_GRAY_STALL_S = 1.2

#: how long a stalled worker may take to trip its breaker open
_BREAKER_OPEN_TIMEOUT = 5.0

#: how long a recovered worker may take to be re-admitted (cooldown
#: escalation + half-open probes included)
_READMIT_TIMEOUT = 15.0


@dataclass
class GrayScenario(GatewayScenario):
    """One gray-soak scenario: the base scenario checks plus the
    stall → eject → re-admit lifecycle and hedge launches."""

    stalled_wid: int = -1
    breaker_opened: bool = False
    readmitted: bool = False
    stall_detect_s: float = 0.0
    readmit_s: float = 0.0
    hedged: int = 0

    def to_dict(self) -> dict:
        d = super().to_dict()
        d.update(
            stalled_wid=self.stalled_wid,
            breaker_opened=self.breaker_opened,
            readmitted=self.readmitted,
            stall_detect_s=round(self.stall_detect_s, 4),
            readmit_s=round(self.readmit_s, 4),
            hedged=self.hedged,
        )
        return d


@dataclass
class GraySoakReport(GatewaySoakReport):
    """Gray-soak sweep outcome: the base report plus the budget drill
    and sweep-level (cross-scenario) violations."""

    budget_drill: Dict[str, float] = field(default_factory=dict)
    extra_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violations(self) -> List[str]:
        out = GatewaySoakReport.violations.fget(self)  # type: ignore[attr-defined]
        out.extend(f"[sweep] {v}" for v in self.extra_violations)
        return out

    @property
    def totals(self) -> Dict[str, int]:
        out = GatewaySoakReport.totals.fget(self)  # type: ignore[attr-defined]
        out["stalls"] = sum(
            1 for s in self.scenarios if getattr(s, "stalled_wid", -1) >= 0
        )
        out["hedged"] = sum(getattr(s, "hedged", 0) for s in self.scenarios)
        return out

    def to_dict(self) -> dict:
        d = super().to_dict()
        d["schema"] = GATEWAY_GRAY_SOAK_SCHEMA
        d["budget_drill"] = dict(self.budget_drill)
        d["sweep_violations"] = list(self.extra_violations)
        d["violations"] = list(self.violations)
        return d


def _tenant_hashed_to(num_workers: int, wid: int) -> str:
    """A tenant string whose crc32 affinity is worker *wid* (the gray
    soak uses it to aim a submission at the worker it just wedged)."""
    import zlib

    k = 0
    while True:
        name = f"pin-{k}"
        if zlib.crc32(name.encode()) % num_workers == wid:
            return name
        k += 1


async def _gray_tenant(
    gw: Gateway,
    name: str,
    tseed: int,
    subs: List[Submission],
    instances: List[tuple],
    frozen_pool: list,
    hedge_fh,
    cancels: List[int],
    hedged: List[int],
) -> None:
    """Gray-soak tenant traffic: the kill-soak mix plus hedged frozen
    replays (``hedge_after`` as a float and as the ``"p95"`` quote)."""
    rng = random.Random(tseed)
    for g in range(rng.randint(2, 3)):
        roll = rng.random()
        if roll < 0.3:
            gseed = derive_seed(tseed, "graph", g) % (1 << 31)
            gh = gw.instance(
                GeneratedSpec(seed=gseed, num_gpus=1), tenant=name
            )
            entry = [gh, 0, True]
            instances.append(entry)
            sub = gw.submit(gh, tenant=name, priority=rng.randint(0, 3))
            subs.append(sub)
            res = await sub
            if res.outcome == "completed":
                entry[1] += res.passes
            else:
                entry[2] = False
        elif roll < 0.7:
            batch = []
            for _ in range(rng.randint(2, 4)):
                if rng.random() < 0.4:
                    s = gw.submit(
                        hedge_fh,
                        tenant=name,
                        hedge_after=rng.choice((0.2, "p95")),
                    )
                    hedged.append(s.rid)
                else:
                    s = gw.submit(
                        rng.choice(frozen_pool),
                        tenant=name,
                        priority=rng.randint(0, 3),
                    )
                batch.append(s)
            subs.extend(batch)
            await asyncio.gather(*(s.future for s in batch))
        else:
            droll = rng.random()
            deadline = 0.003 if droll < 0.2 else 30.0 if droll < 0.4 else None
            sub = gw.submit(
                BuiltinSpec(rng.choice(("saxpy", "timing"))),
                tenant=name,
                priority=rng.randint(0, 3),
                deadline=deadline,
            )
            subs.append(sub)
            if rng.random() < 0.3:
                await asyncio.sleep(rng.random() * 0.004)
                if gw.cancel(sub):
                    cancels.append(sub.rid)
            await asyncio.wait({sub.future})
        if rng.random() < 0.3:
            await asyncio.sleep(rng.random() * 0.01)


async def _run_gray_scenario(
    gw: Gateway,
    index: int,
    seed: int,
    frozen_pool: list,
    hedge_fh,
    *,
    kill: bool,
    stall: bool,
) -> GrayScenario:
    sseed = derive_seed(seed, "graysoak", index)
    rng = random.Random(sseed)
    scenario = GrayScenario(
        index=index,
        seed=sseed % (1 << 31),
        tenants=rng.randint(2, 4),
    )
    before = gw.snapshot()
    subs: List[Submission] = []
    instances: List[tuple] = []
    cancels: List[int] = []
    hedged: List[int] = []
    violations = scenario.violations

    tasks = [
        asyncio.create_task(
            _gray_tenant(
                gw,
                f"gray-{index}-{tid}",
                derive_seed(sseed, "tenant", tid),
                subs,
                instances,
                frozen_pool,
                hedge_fh,
                cancels,
                hedged,
            )
        )
        for tid in range(scenario.tenants)
    ]

    chaos_task: Optional[asyncio.Task] = None
    if stall:

        async def _stall() -> None:
            await asyncio.sleep(0.02 + rng.random() * 0.03)
            victim = gw._workers[rng.randrange(gw.num_workers)]
            if victim is None or victim.dead or not victim.proc.is_alive():
                return
            wid = victim.wid
            scenario.stalled_wid = wid
            breaker = gw._breakers[wid]
            opened0 = breaker.opened_total
            t0 = time.monotonic()
            gw.inject_chaos(wid, stall_s=_GRAY_STALL_S)
            # aim one hedged submission at the wedged worker: its
            # Submit sits unread behind the stall, so the hedge leg
            # on a healthy worker should win the race
            hs = gw.submit(
                hedge_fh,
                tenant=_tenant_hashed_to(gw.num_workers, wid),
                hedge_after=0.15,
            )
            subs.append(hs)
            if hs.wid == wid:
                scenario.hedged += 1
            # the breaker must eject the stalled worker from routing
            while time.monotonic() - t0 < _BREAKER_OPEN_TIMEOUT:
                if breaker.opened_total > opened0:
                    scenario.breaker_opened = True
                    scenario.stall_detect_s = time.monotonic() - t0
                    break
                await asyncio.sleep(0.02)
            if not scenario.breaker_opened:
                violations.append(
                    f"worker {wid} stalled {_GRAY_STALL_S:.1f}s but its "
                    f"breaker never opened within "
                    f"{_BREAKER_OPEN_TIMEOUT:.0f}s"
                )
                return
            # ... and re-admit it once heartbeats resume — without
            # ever having killed it (a stall is not a death)
            while time.monotonic() - t0 < _READMIT_TIMEOUT:
                if gw._workers[wid] is not victim:
                    violations.append(
                        f"stalled worker {wid} was respawned — a gray "
                        f"stall escalated to a death"
                    )
                    return
                if breaker.routable:
                    scenario.readmitted = True
                    scenario.readmit_s = time.monotonic() - t0
                    return
                await asyncio.sleep(0.05)
            violations.append(
                f"worker {wid} recovered but was not re-admitted within "
                f"{_READMIT_TIMEOUT:.0f}s"
            )

        chaos_task = asyncio.create_task(_stall())
    elif kill:

        async def _kill() -> None:
            await asyncio.sleep(rng.random() * 0.05)
            victim = gw._workers[rng.randrange(gw.num_workers)]
            if victim is None or victim.dead or not victim.proc.is_alive():
                return
            scenario.killed_wid = victim.wid
            t0 = time.monotonic()
            os.kill(victim.proc.pid, signal.SIGKILL)
            while time.monotonic() - t0 < _RESPAWN_TIMEOUT:
                fresh = gw._workers[victim.wid]
                if fresh is not victim and fresh is not None and fresh.ready:
                    scenario.respawn_s = time.monotonic() - t0
                    return
                await asyncio.sleep(0.02)
            violations.append(
                f"worker {victim.wid} not respawned within "
                f"{_RESPAWN_TIMEOUT:.0f}s of SIGKILL"
            )

        chaos_task = asyncio.create_task(_kill())

    try:
        await asyncio.wait_for(asyncio.gather(*tasks), _SETTLE_TIMEOUT)
    except asyncio.TimeoutError:
        violations.append(
            f"scenario did not settle within {_SETTLE_TIMEOUT:.0f}s"
        )
        for t in tasks:
            t.cancel()
    if chaos_task is not None:
        await chaos_task

    await _reconcile(gw, scenario, subs, instances, cancels, before, kill)
    return scenario


async def _budget_drill(seed: int) -> Dict[str, float]:
    """Scripted retry-budget exhaustion: a gateway whose bucket starts
    empty loses a worker with work in flight — every replay must be
    denied and settle immediately as ``worker_lost`` with
    ``reason="retry_budget"``, observable in the counters."""
    config = WorkerConfig(threads=2, gpus=1, seed=seed)
    out: Dict[str, float] = {}
    async with Gateway(
        2,
        worker=config,
        heartbeat_interval=0.1,
        retry_budget=RetryBudget(1.0, initial=0.0, refill_per_success=0.0),
        seed=seed,
        name="gray-budget",
    ) as gw:
        fh = await gw.freeze(BurstSpec(width=4, sleep_s=0.6))
        batch = [gw.submit(fh) for _ in range(4)]  # round-robin: 2/worker
        await asyncio.sleep(0.15)
        victim = gw._workers[0]
        os.kill(victim.proc.pid, signal.SIGKILL)
        results = await asyncio.gather(*(s.future for s in batch))
        snap = gw.snapshot()
        out["submitted"] = float(len(batch))
        out["worker_lost_budget"] = float(
            sum(
                1
                for r in results
                if r.outcome == "worker_lost" and r.reason == "retry_budget"
            )
        )
        out["completed"] = float(
            sum(1 for r in results if r.outcome == "completed")
        )
        out["denied"] = float(snap.get("gateway.retry_budget.exhausted", 0))
        out["tokens_left"] = float(gw.retry_budget.tokens)
    return out


async def _run_gray_soak(
    scenarios: int,
    *,
    workers: int,
    seed: int,
    stall_every: int,
    kill_every: int,
    log: Optional[Callable[[str], None]],
) -> GraySoakReport:
    config = WorkerConfig(
        threads=2,
        gpus=1,
        max_topologies=4,
        policy="reject",
        seed=seed,
    )
    report = GraySoakReport(seed=seed, workers=workers)
    async with Gateway(
        workers,
        worker=config,
        heartbeat_interval=0.1,
        stall_misses=3,       # stall window: 0.3s
        heartbeat_misses=40,  # death budget: 4s — stalls never escalate
        breaker_threshold=2,
        breaker_cooldown=0.4,
        breaker_probe_successes=2,
        retry_budget=RetryBudget(32.0, refill_per_success=0.5),
        seed=seed,
        name="gray",
    ) as gw:
        frozen_pool = [await gw.freeze(BurstSpec(width=8))]
        # the hedge shape runs ~50ms, so healthy-path hedges rarely
        # fire while wedged-primary hedges reliably win
        hedge_fh = await gw.freeze(BurstSpec(width=4, sleep_s=0.05))
        for i in range(scenarios):
            stall = stall_every > 0 and i % stall_every == stall_every // 2
            kill = (
                not stall
                and kill_every > 0
                and i % kill_every == kill_every - 1
            )
            scenario = await _run_gray_scenario(
                gw, i, seed, frozen_pool, hedge_fh, kill=kill, stall=stall
            )
            report.scenarios.append(scenario)
            report.wall_samples.extend(
                getattr(scenario, "_wall_samples", ())
            )
            if log is not None:
                c = scenario.counts
                state = "ok" if scenario.ok else "VIOLATION"
                chaos = ""
                if scenario.stalled_wid >= 0:
                    chaos = (
                        f" stall=w{scenario.stalled_wid}"
                        f" open@{scenario.stall_detect_s * 1000:.0f}ms"
                        f" readmit@{scenario.readmit_s * 1000:.0f}ms"
                    )
                elif scenario.killed_wid >= 0:
                    chaos = (
                        f" kill=w{scenario.killed_wid}"
                        f"@{scenario.respawn_s * 1000:.0f}ms"
                    )
                log(
                    f"  #{scenario.index:>3} seed={scenario.seed:<11} "
                    f"{scenario.tenants}t  {scenario.submitted:>2} submitted "
                    f"{c.get('completed', 0):>2} done "
                    f"{c.get('cancelled', 0)} cancel "
                    f"{c.get('worker_lost', 0)} lost{chaos}  {state}"
                )
        report.gateway_counters = {
            k: v
            for k, v in gw.snapshot().items()
            if not isinstance(v, dict)
        }

    # hedge accounting must balance: every launched leg either won,
    # lost (cancelled at settle), or was dropped with a dead worker
    gc = report.gateway_counters
    launched = gc.get("gateway.hedge.launched", 0)
    settled_ways = (
        gc.get("gateway.hedge.wins", 0)
        + gc.get("gateway.hedge.losses", 0)
        + gc.get("gateway.hedge.dropped", 0)
    )
    if launched != settled_ways:
        report.extra_violations.append(
            f"hedge accounting broke: {launched} launched vs "
            f"{settled_ways} wins+losses+dropped"
        )

    if log is not None:
        log("  running retry-budget exhaustion drill...")
    report.budget_drill = await _budget_drill(seed)
    if report.budget_drill.get("worker_lost_budget", 0) < 1:
        report.extra_violations.append(
            "budget drill: no worker_lost settlement carried "
            "reason='retry_budget'"
        )
    if report.budget_drill.get("denied", 0) < 1:
        report.extra_violations.append(
            "budget drill: gateway.retry_budget.exhausted never moved"
        )
    return report


def run_gateway_gray_soak(
    scenarios: int = 50,
    *,
    workers: int = 4,
    seed: int = 0,
    stall_every: int = 5,
    kill_every: int = 5,
    log: Optional[Callable[[str], None]] = None,
) -> GraySoakReport:
    """Sweep *scenarios* gray-failure scenarios against one gateway.

    Every ``stall_every``-th scenario wedges a live worker's recv loop
    (a *gray* stall: the process stays alive, heartbeats stop) and
    asserts the breaker ejects and then re-admits it; every
    ``kill_every``-th scenario SIGKILLs a worker (offset so the two
    never collide).  Ends with the retry-budget exhaustion drill.
    Never raises on violations — the caller decides.
    """
    return asyncio.run(
        _run_gray_soak(
            scenarios,
            workers=workers,
            seed=seed,
            stall_every=stall_every,
            kill_every=kill_every,
            log=log,
        )
    )


__all__ = [
    "GATEWAY_SOAK_SCHEMA",
    "GATEWAY_GRAY_SOAK_SCHEMA",
    "GatewayScenario",
    "GatewaySoakReport",
    "GrayScenario",
    "GraySoakReport",
    "run_gateway_soak",
    "run_gateway_gray_soak",
]
