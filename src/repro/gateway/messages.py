"""The gateway control-plane protocol (pickle-framed pipe messages).

One duplex :class:`multiprocessing.connection.Connection` pair per
worker carries every control-plane exchange; messages are plain
frozen dataclasses, framed and pickled by the connection itself.  The
full reference, including the state machine each message participates
in, is docs/gateway.md ("Message protocol").

Gateway → worker (requests):

==================  ==================================================
:class:`Submit`     run a spec / instance / frozen graph; ``rid``-keyed
:class:`Freeze`     materialize + ``freeze()`` a spec, cache by ``fid``
:class:`Cancel`     cooperative cancel of an outstanding ``rid``
:class:`Drain`      stop admission, settle everything, reply `Drained`
:class:`Ping`       heartbeat probe, echoed as :class:`Pong`
:class:`MetricsPull` request a full executor metrics snapshot
:class:`Verify`     run a generated instance's oracle check
:class:`ChaosInject` wedge the recv loop (gray-failure injection)
:class:`Shutdown`   tear the executor down and exit the process
==================  ==================================================

Worker → gateway (replies and streams):

==================  ==================================================
:class:`Ready`      the worker's executor is up (pid, config echo)
:class:`Accepted`   a submission passed worker-side admission
:class:`Settled`    terminal outcome of one submission (exactly once)
:class:`Frozen`     a :class:`Freeze` completed (or failed)
:class:`Drained`    a :class:`Drain` finished (ok = within timeout)
:class:`Pong`       heartbeat echo with in-flight count
:class:`MetricsReply` the executor + worker metric snapshot
:class:`Verified`   oracle violations for a :class:`Verify`
:class:`EventMsg`   structured event stream (degraded, replanned, …)
==================  ==================================================

Every request that expects a reply carries the gateway-chosen id the
reply echoes; the worker never invents ids.  Replies may interleave
arbitrarily with :class:`Accepted`/:class:`Settled` traffic — the
stream is FIFO per worker but unordered across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gateway.spec import WorkSpec

#: protocol schema tag, checked at Ready-time; bump on layout changes
#: (2: added :class:`ChaosInject` for deterministic gray-failure soaks;
#: 3: :class:`Submit` carries the durable journal id ``jid`` so worker
#: logs/events can be correlated with journal entries)
PROTOCOL_VERSION = 3

#: terminal outcomes a Settled message may carry — the same classes the
#: in-process soak reconciles, plus the gateway-level ``worker_lost``
OUTCOMES = (
    "completed",
    "rejected",
    "shed",
    "deadline_exceeded",
    "cancelled",
    "failed",
    "worker_lost",
)


# ---------------------------------------------------------------------------
# gateway -> worker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Submit:
    """Run a workload.  Exactly one of *spec*/*fid* names the graph:
    *spec* (+ optional *iid*) materializes (or reuses) a worker-local
    instance; *fid* replays a previously shipped frozen topology."""

    rid: int
    spec: Optional[WorkSpec] = None
    iid: Optional[int] = None
    fid: Optional[int] = None
    repeats: int = 1
    priority: int = 0
    deadline: Optional[float] = None
    tenant: str = ""
    #: durable journal id (0 = unjournaled); pass-through for worker
    #: logs and events — the worker never interprets it
    jid: int = 0


@dataclass(frozen=True)
class Freeze:
    """Materialize *spec* and ``freeze()`` it under *fid* (ships once;
    every later :class:`Submit` replays by id — the PR 6 fast path
    survives the process boundary)."""

    rid: int
    fid: int
    spec: WorkSpec


@dataclass(frozen=True)
class Cancel:
    rid: int


@dataclass(frozen=True)
class Drain:
    rid: int
    timeout: Optional[float] = None


@dataclass(frozen=True)
class Ping:
    seq: int


@dataclass(frozen=True)
class MetricsPull:
    rid: int


@dataclass(frozen=True)
class Verify:
    """Oracle-check generated instance *iid* against *passes* completed
    passes (docs/gateway.md, "Verification")."""

    rid: int
    iid: int
    passes: int


@dataclass(frozen=True)
class ChaosInject:
    """Deterministically wedge the worker's recv loop: sleep *stall_s*
    (a gray stall — heartbeats stop being answered while the process
    stays alive) and/or busy-spin *spin_s* (a starved control loop).
    Used by the gray soak and ``Gateway.inject_chaos``; no reply."""

    stall_s: float = 0.0
    spin_s: float = 0.0


@dataclass(frozen=True)
class Shutdown:
    pass


# ---------------------------------------------------------------------------
# worker -> gateway
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Ready:
    wid: int
    pid: int
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Accepted:
    """The submission passed worker-side admission and entered the
    executor; a :class:`Settled` will follow exactly once."""

    rid: int
    wid: int


@dataclass(frozen=True)
class Settled:
    """Terminal outcome of one submission."""

    rid: int
    outcome: str
    passes: int = 0
    error: str = ""
    reason: str = ""
    wall_s: float = 0.0


@dataclass(frozen=True)
class Frozen:
    rid: int
    fid: int
    ok: bool
    error: str = ""


@dataclass(frozen=True)
class Drained:
    rid: int
    ok: bool


@dataclass(frozen=True)
class Pong:
    seq: int
    wid: int
    inflight: int


@dataclass(frozen=True)
class MetricsReply:
    rid: int
    wid: int
    snapshot: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class Verified:
    rid: int
    iid: int
    violations: Tuple[str, ...] = ()


@dataclass(frozen=True)
class EventMsg:
    """One structured event: worker lifecycle (``worker_ready``,
    ``worker_draining``) or per-submission progress forwarded into the
    gateway's streaming event queues."""

    rid: Optional[int]
    kind: str
    fields: Dict = field(default_factory=dict)


__all__ = [
    "PROTOCOL_VERSION",
    "OUTCOMES",
    "Submit",
    "Freeze",
    "Cancel",
    "Drain",
    "Ping",
    "MetricsPull",
    "Verify",
    "ChaosInject",
    "Shutdown",
    "Ready",
    "Accepted",
    "Settled",
    "Frozen",
    "Drained",
    "Pong",
    "MetricsReply",
    "Verified",
    "EventMsg",
]
