"""Read-only journal validation: ``repro fsck <journal>``.

Walks every segment of a :class:`~repro.durability.Journal` directory
without mutating a byte, re-deriving exactly the judgements
:meth:`Journal.open` would make — checksums, frame structure, sequence
monotonicity, settle-exactly-once — and reporting them instead of
acting on them.  Operators run it before pointing a recovering gateway
at a journal; the crash soak runs it after every SIGKILL cycle to
prove the log it is about to replay is internally consistent.

Severity model:

- ``corruptions`` (bad frame / checksum / marker mid-log, sequence
  regression, duplicate accept or settle, orphan settle) — the journal
  can no longer prove exactly-once settlement; ``repro fsck`` exits 1;
- ``torn_tail_bytes`` — expected crash residue at the end of the final
  segment; open() will truncate it; *not* an error;
- ``tmp_segments`` — an uncommitted ``*.tmp`` compact segment left by
  a crash mid-compaction; the superseded generation is still complete
  and open() removes the residue; *not* an error;
- ``unsettled`` — accepted work with no settlement yet; normal for a
  journal whose gateway crashed (recovery will resubmit it); an error
  only under ``--strict`` (a journal that *should* be fully drained).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.durability.journal import is_tmp_segment, scan_bytes, segment_index


@dataclass
class FsckFinding:
    """One corruption finding: where and what."""

    kind: str  # checksum | frame | marker | pickle | sequence | duplicate | orphan
    segment: str
    offset: int
    detail: str = ""

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FsckReport:
    """Everything ``repro fsck`` learned about one journal directory."""

    path: str
    segments: int = 0
    records: int = 0
    record_kinds: Dict[str, int] = field(default_factory=dict)
    bytes_scanned: int = 0
    torn_tail_bytes: int = 0
    stale_segments: int = 0  # pre-compaction leftovers (ignored, like open())
    tmp_segments: int = 0  # uncommitted *.tmp compact residue (removed by open())
    accepted: int = 0
    settled: int = 0
    frozen: int = 0
    unsettled: List[Tuple[int, str]] = field(default_factory=list)  # (jid, key)
    corruptions: List[FsckFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No corruption — the journal is safe to open and recover."""
        return not self.corruptions

    @property
    def drained(self) -> bool:
        """Clean *and* every accepted entry settled (``--strict`` bar)."""
        return self.clean and not self.unsettled

    def to_dict(self) -> dict:
        return {
            "schema": "repro.fsck-report/1",
            "path": self.path,
            "segments": self.segments,
            "records": self.records,
            "record_kinds": dict(self.record_kinds),
            "bytes_scanned": self.bytes_scanned,
            "torn_tail_bytes": self.torn_tail_bytes,
            "stale_segments": self.stale_segments,
            "tmp_segments": self.tmp_segments,
            "accepted": self.accepted,
            "settled": self.settled,
            "frozen": self.frozen,
            "unsettled": [list(u) for u in self.unsettled],
            "corruptions": [c.to_dict() for c in self.corruptions],
            "clean": self.clean,
            "drained": self.drained,
        }

    def render_text(self) -> str:
        lines = [
            f"journal {self.path}",
            f"  segments: {self.segments} "
            f"({self.stale_segments} stale pre-compaction leftover(s))"
            if self.stale_segments
            else f"  segments: {self.segments}",
            f"  records:  {self.records} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.record_kinds.items())) or 'none'})",
            f"  bytes:    {self.bytes_scanned}"
            + (f" (+{self.torn_tail_bytes} torn tail)" if self.torn_tail_bytes else ""),
            f"  entries:  {self.accepted} accepted, {self.settled} settled, "
            f"{len(self.unsettled)} unsettled, {self.frozen} frozen",
        ]
        if self.tmp_segments:
            lines.append(
                f"  tmp:      {self.tmp_segments} uncommitted compact "
                f"segment(s) (crash residue; open() removes them)"
            )
        for jid, key in self.unsettled[:20]:
            lines.append(f"    unsettled jid={jid}" + (f" key={key!r}" if key else ""))
        if len(self.unsettled) > 20:
            lines.append(f"    ... and {len(self.unsettled) - 20} more")
        if self.corruptions:
            lines.append(f"  CORRUPT ({len(self.corruptions)} finding(s)):")
            for c in self.corruptions:
                lines.append(
                    f"    {c.kind} in {c.segment} at byte {c.offset}"
                    + (f": {c.detail}" if c.detail else "")
                )
        else:
            lines.append("  clean: no corruption")
        return "\n".join(lines)


def _segment_is_compact(path: str) -> bool:
    try:
        with open(path, "rb") as fh:
            head = fh.read(64 << 10)
    except OSError:
        return False
    records, _end, _problem = scan_bytes(head)
    return bool(
        records
        and records[0][1].get("kind") == "segment_header"
        and records[0][1].get("compact")
    )


def fsck(path: str) -> FsckReport:
    """Validate the journal directory at *path* read-only."""
    report = FsckReport(path=str(path))
    if not os.path.isdir(path):
        report.corruptions.append(
            FsckFinding("missing", "", 0, f"{path} is not a directory")
        )
        return report
    listing = os.listdir(path)
    report.tmp_segments = sum(1 for n in listing if is_tmp_segment(n))
    names = sorted(n for n in listing if segment_index(n) is not None)

    # mirror open(): the newest compact segment supersedes older ones
    start = 0
    for i, name in enumerate(names):
        if _segment_is_compact(os.path.join(path, name)):
            start = i
    report.stale_segments = start
    names = names[start:]

    entries: Dict[int, bool] = {}  # jid -> settled?
    keys: Dict[int, str] = {}
    max_seq = 0
    for pos, name in enumerate(names):
        final = pos == len(names) - 1
        spath = os.path.join(path, name)
        with open(spath, "rb") as fh:
            data = fh.read()
        records, good_end, problem = scan_bytes(data)
        report.segments += 1
        report.bytes_scanned += good_end
        if problem is not None:
            kind, offset = problem
            if final:
                report.torn_tail_bytes += len(data) - good_end
            else:
                report.corruptions.append(
                    FsckFinding(kind, name, offset, "in a non-final segment")
                )
        for offset, rec in records:
            report.records += 1
            kind = rec.get("kind", "?")
            report.record_kinds[kind] = report.record_kinds.get(kind, 0) + 1
            seq = rec.get("seq", 0)
            if seq <= max_seq:
                report.corruptions.append(
                    FsckFinding(
                        "sequence", name, offset,
                        f"seq {seq} after {max_seq}",
                    )
                )
            else:
                max_seq = seq
            if kind == "accepted":
                jid = rec.get("jid")
                if jid in entries:
                    report.corruptions.append(
                        FsckFinding("duplicate", name, offset, f"accepted jid {jid} twice")
                    )
                else:
                    entries[jid] = False
                    keys[jid] = rec.get("key", "")
                    report.accepted += 1
            elif kind == "settled":
                jid = rec.get("jid")
                if jid not in entries:
                    report.corruptions.append(
                        FsckFinding("orphan", name, offset, f"settle for unknown jid {jid}")
                    )
                elif entries[jid]:
                    report.corruptions.append(
                        FsckFinding("duplicate", name, offset, f"jid {jid} settled twice")
                    )
                else:
                    entries[jid] = True
                    report.settled += 1
            elif kind == "frozen":
                report.frozen += 1

    report.unsettled = sorted(
        (jid, keys.get(jid, "")) for jid, done in entries.items() if not done
    )
    return report


__all__ = ["fsck", "FsckReport", "FsckFinding"]
