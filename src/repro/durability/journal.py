"""Durable submission journal: an append-only, checksummed WAL.

The crash-consistency backbone of the gateway (docs/durability.md).  A
:class:`Journal` is a directory of **segment files** filled with
CRC-framed records; the gateway writes *through* it so that every
accepted submission and every settlement is on disk — fsync'd — before
the client observes it.  After a gateway crash,
:meth:`repro.gateway.Gateway.recover` replays the journal and
guarantees every journaled submission reaches exactly one settlement.

Frame layout (little-endian)::

    +--------+----------+---------+-----------------+
    | marker | length   | crc32   | payload         |
    | 2 B    | u32      | u32     | `length` bytes  |
    +--------+----------+---------+-----------------+

The payload is a pickled dict carrying ``kind`` and a strictly
increasing ``seq``.  Four record kinds exist:

==================  ==================================================
``segment_header``  first record of every segment (index, compact flag)
``accepted``        one submission entered the gateway (jid, key, spec)
``settled``         terminal outcome of one jid — at most once per jid
``frozen``          a frozen topology's fid + spec (re-shipped on recover)
==================  ==================================================

Crash-consistency rules, in the style of etcd's WAL:

- a **torn tail** — a partial or checksum-failing frame at the end of
  the *final* segment — is the expected residue of an interrupted
  append and is truncated away on :meth:`Journal.open`;
- corruption anywhere else (bad frame mid-segment, checksum failure in
  a non-final segment, a sequence regression, a duplicate settle)
  cannot be explained by a crash and raises a structured
  :class:`~repro.errors.JournalCorruptError` instead of guessing;
- every append is written as one frame and fsync'd (policy
  ``"always"``) before the caller proceeds; a failed write is rolled
  back by truncating to the pre-append offset, so torn bytes never
  masquerade as a committed record — the caller gets a structured
  :class:`~repro.errors.JournalWriteError`;
- **rotation** caps segment size; **compaction** rewrites the *live*
  records (frozen specs, unsettled entries, and — by default — keyed
  settled entries, whose results must stay replayable for idempotent
  dedupe) into a fresh segment whose header carries ``compact=True``.
  The compact segment is written under a temporary name and only
  :func:`os.rename`\\ d into place after every live record is on disk
  and fsync'd, so open() can never observe a *partial* compact
  generation: a crash mid-compaction leaves the old segments fully
  intact plus a stale ``*.tmp`` file that the next open() removes.  On
  open, every segment older than the newest compact header is ignored
  (and removed).

All I/O goes through an injectable :class:`~repro.durability.osshim.OsFacade`
so fault-injection tests and the crash soak can schedule fsync
failures, short writes, and ``ENOSPC`` deterministically.
"""

from __future__ import annotations

import io
import os
import pickle
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import JournalCorruptError, JournalError, JournalWriteError
from repro.durability.osshim import OsFacade

#: two-byte frame marker; a frame that does not start with it is torn
#: (final segment) or corrupt (anywhere else)
MARKER = b"\xa6\x5c"

#: frame header after the marker: payload length + crc32(payload)
_HDR = struct.Struct("<II")

#: full fixed overhead of one frame
FRAME_OVERHEAD = len(MARKER) + _HDR.size

#: segment file naming: seg-00000001.wal, strictly increasing indices
_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.wal$")

#: suffix of an uncommitted compact segment being written; renamed to
#: its final name only once complete, removed as stale residue on open
TMP_SUFFIX = ".tmp"

#: record kinds a segment may carry
RECORD_KINDS = ("segment_header", "accepted", "settled", "frozen")

#: the only globals a journal payload may reference when decoded: the
#: picklable spec classes plus a handful of benign builtins.  ``repro
#: fsck`` is documented as safe to run on a suspect journal, so the
#: codec must never import or execute anything a crafted (CRC-valid)
#: frame names — anything outside this allowlist is reported as a
#: ``"pickle"`` problem by :func:`scan_bytes`, exactly like a payload
#: that fails to parse.
SAFE_GLOBALS = {
    ("builtins", "set"),
    ("builtins", "frozenset"),
    ("builtins", "bytearray"),
    ("builtins", "complex"),
    ("repro.gateway.spec", "WorkSpec"),
    ("repro.gateway.spec", "GeneratedSpec"),
    ("repro.gateway.spec", "BuiltinSpec"),
    ("repro.gateway.spec", "BurstSpec"),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses any global outside :data:`SAFE_GLOBALS`."""

    def find_class(self, module: str, name: str):
        if (module, name) in SAFE_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"journal payload references disallowed global "
            f"{module}.{name}"
        )


def decode_payload(payload: bytes):
    """Decode one frame payload under the :data:`SAFE_GLOBALS` allowlist."""
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def segment_name(index: int) -> str:
    return f"seg-{index:08d}.wal"


def segment_index(name: str) -> Optional[int]:
    m = _SEGMENT_RE.match(name)
    return int(m.group(1)) if m else None


def is_tmp_segment(name: str) -> bool:
    """A stale mid-compaction leftover (``seg-XXXXXXXX.wal.tmp``)."""
    return name.endswith(TMP_SUFFIX) and (
        segment_index(name[: -len(TMP_SUFFIX)]) is not None
    )


def encode_record(record: dict) -> bytes:
    """Frame one record dict: marker + length + crc32 + pickled payload."""
    payload = pickle.dumps(record, protocol=4)
    return MARKER + _HDR.pack(len(payload), zlib.crc32(payload)) + payload


def scan_bytes(data: bytes) -> Tuple[List[Tuple[int, dict]], int, Optional[Tuple[str, int]]]:
    """Decode every whole frame in *data*.

    Returns ``(records, good_end, problem)`` where *records* is a list
    of ``(offset, record)`` pairs, *good_end* is the byte offset just
    past the last intact frame, and *problem* is ``None`` for a clean
    scan or ``(kind, offset)`` — ``kind`` one of ``"marker"``,
    ``"frame"``, ``"checksum"``, ``"pickle"`` — naming the first bad
    frame.  The caller decides whether the problem is a torn tail
    (final segment: truncate) or corruption (raise / report).
    """
    records: List[Tuple[int, dict]] = []
    off = 0
    n = len(data)
    while off < n:
        if off + FRAME_OVERHEAD > n:
            return records, off, ("frame", off)
        if data[off : off + len(MARKER)] != MARKER:
            return records, off, ("marker", off)
        length, crc = _HDR.unpack_from(data, off + len(MARKER))
        start = off + FRAME_OVERHEAD
        end = start + length
        if end > n:
            return records, off, ("frame", off)
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, off, ("checksum", off)
        try:
            record = decode_payload(payload)
        except Exception:
            return records, off, ("pickle", off)
        records.append((off, record))
        off = end
    return records, off, None


@dataclass
class JournalEntry:
    """In-memory view of one journaled submission (jid-keyed)."""

    jid: int
    key: str = ""
    target: str = "spec"  # "spec" | "frozen" | "instance"
    spec: object = None
    fid: Optional[int] = None
    iid: Optional[int] = None
    priority: int = 0
    deadline: Optional[float] = None
    repeats: int = 1
    tenant: str = ""
    settled: Optional[dict] = None

    @property
    def is_settled(self) -> bool:
        return self.settled is not None

    @classmethod
    def from_record(cls, rec: dict) -> "JournalEntry":
        return cls(
            jid=rec["jid"],
            key=rec.get("key", ""),
            target=rec.get("target", "spec"),
            spec=rec.get("spec"),
            fid=rec.get("fid"),
            iid=rec.get("iid"),
            priority=rec.get("priority", 0),
            deadline=rec.get("deadline"),
            repeats=rec.get("repeats", 1),
            tenant=rec.get("tenant", ""),
        )

    def accepted_record(self) -> dict:
        """The (seq-less) accepted record this entry re-serializes to —
        used by compaction to carry live entries forward."""
        return {
            "kind": "accepted",
            "jid": self.jid,
            "key": self.key,
            "target": self.target,
            "spec": self.spec,
            "fid": self.fid,
            "iid": self.iid,
            "priority": self.priority,
            "deadline": self.deadline,
            "repeats": self.repeats,
            "tenant": self.tenant,
        }

    def settled_record(self) -> dict:
        """The (seq-less) settled record this entry re-serializes to —
        used by compaction to keep keyed settlements replayable."""
        return {"kind": "settled", "jid": self.jid, **(self.settled or {})}


@dataclass
class OpenReport:
    """What :meth:`Journal.open` found and repaired."""

    segments: int = 0
    records: int = 0
    torn_tail_bytes: int = 0
    torn_truncations: int = 0
    dropped_segments: int = 0  # pre-compaction leftovers removed
    tmp_removed: int = 0  # uncommitted *.tmp compact segments removed
    entries: int = 0
    unsettled: int = 0
    frozen: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class Journal:
    """Append-only, checksummed, fsync'd submission journal.

    *path* is a directory (created on open).  ``fsync_policy`` is
    ``"always"`` (fsync every append — the durability the gateway
    relies on), ``"batch"`` (fsync on :meth:`flush`, rotation, and
    close), or ``"never"`` (tests only).  ``os_impl`` swaps the
    system-call surface for fault injection
    (:class:`~repro.durability.osshim.FaultyOs`).

    ``compact_retain_keyed`` (default True) makes compaction carry
    settled entries that have an idempotency key forward, so a
    replayed key keeps returning the journaled Result no matter how
    many compactions have run; set it False to bound the dedupe
    window at one compaction (keyed settlements are then dropped like
    unkeyed ones).
    """

    def __init__(
        self,
        path: str,
        *,
        os_impl: Optional[OsFacade] = None,
        segment_max_bytes: int = 1 << 20,
        fsync_policy: str = "always",
        auto_compact: bool = True,
        compact_min_settled: int = 256,
        compact_retain_keyed: bool = True,
        metrics=None,
    ) -> None:
        if fsync_policy not in ("always", "batch", "never"):
            raise JournalError(
                f"unknown fsync_policy {fsync_policy!r}: expected "
                "'always', 'batch', or 'never'"
            )
        if segment_max_bytes < 4 * FRAME_OVERHEAD:
            raise JournalError("segment_max_bytes is too small to hold records")
        self.path = str(path)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_policy = fsync_policy
        self.auto_compact = auto_compact
        self.compact_min_settled = compact_min_settled
        self.compact_retain_keyed = compact_retain_keyed
        self._os = os_impl or OsFacade()
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._seg_index = 0
        self._seg_size = 0
        self._compacting = False
        self._open = False
        self._next_seq = 1
        self._next_jid = 1
        self.entries: Dict[int, JournalEntry] = {}
        self.by_key: Dict[str, int] = {}
        self.frozen_specs: Dict[int, object] = {}
        self.open_report = OpenReport()

        # journal.* metrics (docs/observability.md, "Journal counters")
        if metrics is None:
            from repro.metrics.registry import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._m_appends = metrics.counter("journal.appends")
        self._m_bytes = metrics.counter("journal.bytes")
        self._m_fsyncs = metrics.counter("journal.fsyncs")
        self._m_rotations = metrics.counter("journal.rotations")
        self._m_compactions = metrics.counter("journal.compactions")
        self._m_torn = metrics.counter("journal.torn_truncations")
        self._m_errors = metrics.counter("journal.errors")
        metrics.register_callback("journal.segments", self._num_segments)
        metrics.register_callback(
            "journal.unsettled",
            lambda: sum(1 for e in self.entries.values() if not e.is_settled),
        )

    # -- introspection -------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def next_fid(self) -> int:
        return max(self.frozen_specs, default=0) + 1

    def _num_segments(self) -> int:
        if not os.path.isdir(self.path):
            return 0
        return sum(1 for n in os.listdir(self.path) if segment_index(n) is not None)

    def counts(self) -> Dict[str, int]:
        settled = sum(1 for e in self.entries.values() if e.is_settled)
        return {
            "entries": len(self.entries),
            "settled": settled,
            "unsettled": len(self.entries) - settled,
            "frozen": len(self.frozen_specs),
        }

    def lookup(self, key: str) -> Optional[int]:
        """jid journaled under idempotency key *key*, or None."""
        return self.by_key.get(key)

    def get(self, jid: int) -> Optional[JournalEntry]:
        return self.entries.get(jid)

    def unsettled(self) -> List[JournalEntry]:
        """Entries accepted but never settled, in jid order — exactly
        the work :meth:`repro.gateway.Gateway.recover` must resubmit."""
        return sorted(
            (e for e in self.entries.values() if not e.is_settled),
            key=lambda e: e.jid,
        )

    # -- open / close --------------------------------------------------
    def open(self) -> "Journal":
        """Open (or create) the journal: scan every segment, truncate
        a torn tail, rebuild the in-memory state, and position the
        write head.  Idempotent."""
        if self._open:
            return self
        os.makedirs(self.path, exist_ok=True)
        report = OpenReport()
        # an uncommitted compact segment (crash mid-compaction, before
        # the rename) is residue, never state — the superseded
        # generation it was replacing is still complete on disk
        for name in os.listdir(self.path):
            if is_tmp_segment(name):
                self._os.unlink(os.path.join(self.path, name))
                report.tmp_removed += 1
        names = sorted(
            n for n in os.listdir(self.path) if segment_index(n) is not None
        )

        # the newest compact segment supersedes everything before it;
        # a crash between "write compact segment" and "delete the old
        # ones" leaves harmless leftovers we drop (and remove) here
        start = 0
        for i, name in enumerate(names):
            if self._segment_is_compact(name):
                start = i
        for name in names[:start]:
            self._os.unlink(os.path.join(self.path, name))
            report.dropped_segments += 1
        names = names[start:]

        max_seq = 0
        max_jid = 0
        for pos, name in enumerate(names):
            final = pos == len(names) - 1
            spath = os.path.join(self.path, name)
            with open(spath, "rb") as fh:
                data = fh.read()
            records, good_end, problem = scan_bytes(data)
            if problem is not None:
                kind, offset = problem
                if not final:
                    raise JournalCorruptError(kind, name, offset)
                # torn tail: the expected residue of an interrupted
                # append — truncate it away and carry on
                report.torn_tail_bytes += len(data) - good_end
                report.torn_truncations += 1
                self._m_torn.inc()
                fd = self._os.open(spath, os.O_WRONLY)
                try:
                    self._os.ftruncate(fd, good_end)
                    if self.fsync_policy != "never":
                        self._os.fsync(fd)
                finally:
                    self._os.close(fd)
            for offset, rec in records:
                seq = rec.get("seq", 0)
                if seq <= max_seq:
                    raise JournalCorruptError("sequence", name, offset)
                max_seq = seq
                max_jid = max(max_jid, self._apply(rec, name, offset))
                report.records += 1
            report.segments += 1

        self._next_seq = max_seq + 1
        self._next_jid = max_jid + 1
        counts = self.counts()
        report.entries = counts["entries"]
        report.unsettled = counts["unsettled"]
        report.frozen = counts["frozen"]
        self.open_report = report

        if names:
            self._seg_index = segment_index(names[-1])
            spath = os.path.join(self.path, names[-1])
            self._seg_size = os.path.getsize(spath)
            self._fd = self._os.open(spath, os.O_WRONLY)
            os.lseek(self._fd, self._seg_size, os.SEEK_SET)
            self._open = True
        else:
            self._open = True
            self._new_segment(1, compact=False)
        return self

    def _segment_is_compact(self, name: str) -> bool:
        spath = os.path.join(self.path, name)
        try:
            with open(spath, "rb") as fh:
                head = fh.read(64 << 10)
        except OSError:
            return False
        records, _end, _problem = scan_bytes(head)
        if not records:
            return False
        first = records[0][1]
        return first.get("kind") == "segment_header" and bool(first.get("compact"))

    def _apply(self, rec: dict, segment: str, offset: int) -> int:
        """Fold one scanned record into the state; returns its jid (0
        for non-submission records)."""
        kind = rec.get("kind")
        if kind == "segment_header":
            return 0
        if kind == "accepted":
            jid = rec["jid"]
            if jid in self.entries:
                raise JournalCorruptError(
                    "duplicate", segment, offset,
                    f"journal corrupt (duplicate accepted jid {jid}) in "
                    f"segment {segment!r} at byte {offset}",
                )
            entry = JournalEntry.from_record(rec)
            self.entries[jid] = entry
            if entry.key:
                self.by_key[entry.key] = jid
            return jid
        if kind == "settled":
            jid = rec["jid"]
            entry = self.entries.get(jid)
            if entry is None:
                raise JournalCorruptError(
                    "orphan", segment, offset,
                    f"journal corrupt (settled orphan jid {jid}) in "
                    f"segment {segment!r} at byte {offset}",
                )
            if entry.is_settled:
                raise JournalCorruptError(
                    "duplicate", segment, offset,
                    f"journal corrupt (duplicate settle for jid {jid}) in "
                    f"segment {segment!r} at byte {offset}",
                )
            entry.settled = {
                k: rec[k]
                for k in ("outcome", "passes", "error", "reason", "wall_s",
                          "replans", "wid")
                if k in rec
            }
            return jid
        if kind == "frozen":
            self.frozen_specs[rec["fid"]] = rec["spec"]
            return 0
        # unknown kinds are skipped (forward compatibility)
        return 0

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                if self.fsync_policy != "never":
                    try:
                        self._os.fsync(self._fd)
                        self._m_fsyncs.inc()
                    except OSError:
                        pass
                try:
                    self._os.close(self._fd)
                except OSError:  # pragma: no cover - already gone
                    pass
                self._fd = None
            self._open = False

    def flush(self) -> None:
        """fsync the current segment (a no-op under ``"always"`` where
        every append already synced)."""
        with self._lock:
            if self._fd is not None and self.fsync_policy != "never":
                self._os.fsync(self._fd)
                self._m_fsyncs.inc()

    # -- appends -------------------------------------------------------
    def append_accepted(
        self,
        *,
        key: str = "",
        target: str = "spec",
        spec: object = None,
        fid: Optional[int] = None,
        iid: Optional[int] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
        repeats: int = 1,
        tenant: str = "",
    ) -> int:
        """Journal one accepted submission; returns its durable jid.

        The record is on disk (and fsync'd, policy permitting) before
        this returns — the gateway calls it before the client sees the
        submission handle, so a crash can never lose accepted work."""
        with self._lock:
            self._check_writable()
            if key and key in self.by_key:
                raise JournalError(
                    f"idempotency key {key!r} already journaled as "
                    f"jid {self.by_key[key]} (dedupe before appending)"
                )
            jid = self._next_jid
            rec = {
                "kind": "accepted",
                "jid": jid,
                "key": key,
                "target": target,
                "spec": spec,
                "fid": fid,
                "iid": iid,
                "priority": priority,
                "deadline": deadline,
                "repeats": repeats,
                "tenant": tenant,
            }
            self._append(rec)
            self._next_jid = jid + 1
            entry = JournalEntry.from_record(rec)
            self.entries[jid] = entry
            if key:
                self.by_key[key] = jid
            return jid

    def append_settled(
        self,
        jid: int,
        *,
        outcome: str,
        passes: int = 0,
        error: str = "",
        reason: str = "",
        wall_s: float = 0.0,
        replans: int = 0,
        wid: int = -1,
    ) -> None:
        """Journal the terminal outcome of *jid* — exactly once.

        On disk before the gateway resolves the client's Result, so a
        settlement the client observed is never re-run after a crash."""
        with self._lock:
            self._check_writable()
            entry = self.entries.get(jid)
            if entry is None:
                raise JournalError(f"cannot settle unknown jid {jid}")
            if entry.is_settled:
                raise JournalError(
                    f"jid {jid} already settled "
                    f"({entry.settled.get('outcome')!r}); settlements are "
                    f"exactly-once"
                )
            fields = {
                "outcome": outcome,
                "passes": passes,
                "error": error,
                "reason": reason,
                "wall_s": wall_s,
                "replans": replans,
                "wid": wid,
            }
            self._append({"kind": "settled", "jid": jid, **fields})
            entry.settled = fields
        self._maybe_compact()

    def append_frozen(self, fid: int, spec: object) -> None:
        """Journal one frozen topology so recovery can re-ship it."""
        with self._lock:
            self._check_writable()
            if fid in self.frozen_specs:
                raise JournalError(f"fid {fid} already journaled")
            self._append({"kind": "frozen", "fid": fid, "spec": spec})
            self.frozen_specs[fid] = spec

    def _check_writable(self) -> None:
        if not self._open or self._fd is None:
            raise JournalError("journal is not open")

    def _append(self, record: dict) -> None:
        """Frame, write, and (policy permitting) fsync one record; the
        caller holds the lock.  A failed write rolls the segment back
        to its pre-append offset and raises a structured error."""
        record = dict(record)
        record["seq"] = self._next_seq
        frame = encode_record(record)
        if (
            not self._compacting  # a compact segment holds ALL live state
            and self._seg_size + len(frame) > self.segment_max_bytes
            and self._seg_size > 0
        ):
            self._rotate_locked()
            # the new segment's header consumed a seq: re-stamp
            record["seq"] = self._next_seq
            frame = encode_record(record)
        seg = segment_name(self._seg_index)
        offset = self._seg_size
        try:
            n = self._os.write(self._fd, frame)
        except OSError as exc:
            self._rollback(offset)
            self._m_errors.inc()
            import errno as _errno

            reason = "enospc" if exc.errno == _errno.ENOSPC else "write"
            raise JournalWriteError(
                reason, segment=seg, errno_code=exc.errno or 0
            ) from exc
        if n != len(frame):
            self._rollback(offset)
            self._m_errors.inc()
            raise JournalWriteError("short_write", segment=seg)
        if self.fsync_policy == "always":
            try:
                self._os.fsync(self._fd)
            except OSError as exc:
                # the bytes may or may not be durable: roll back so the
                # record is *definitely not* committed rather than maybe
                self._rollback(offset)
                self._m_errors.inc()
                raise JournalWriteError(
                    "fsync", segment=seg, errno_code=exc.errno or 0
                ) from exc
            self._m_fsyncs.inc()
        self._seg_size += len(frame)
        self._next_seq += 1
        self._m_appends.inc()
        self._m_bytes.inc(len(frame))

    def _rollback(self, offset: int) -> None:
        """Best-effort truncate back to *offset* after a failed append;
        if even that fails, the torn bytes are cleaned by the torn-tail
        scan on the next open."""
        try:
            self._os.ftruncate(self._fd, offset)
            os.lseek(self._fd, offset, os.SEEK_SET)
        except OSError:  # pragma: no cover - doubly-faulty device
            pass

    # -- rotation / compaction ----------------------------------------
    def rotate(self) -> None:
        """Seal the current segment and open a fresh one."""
        with self._lock:
            self._check_writable()
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        if self.fsync_policy != "never":
            try:
                self._os.fsync(self._fd)
                self._m_fsyncs.inc()
            except OSError as exc:
                self._m_errors.inc()
                raise JournalWriteError(
                    "rotate",
                    segment=segment_name(self._seg_index),
                    errno_code=exc.errno or 0,
                ) from exc
        self._os.close(self._fd)
        self._fd = None
        self._new_segment(self._seg_index + 1, compact=False)
        self._m_rotations.inc()

    def _new_segment(self, index: int, *, compact: bool) -> None:
        spath = os.path.join(self.path, segment_name(index))
        self._fd = self._os.open(
            spath, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
        )
        self._seg_index = index
        self._seg_size = 0
        self._append(
            {"kind": "segment_header", "index": index, "compact": compact}
        )
        try:
            self._os.fsync_dir(self.path)
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def _droppable(self, entry: JournalEntry) -> bool:
        """Would compaction discard *entry*?  Settled and either
        unkeyed or keyed-retention disabled."""
        return entry.is_settled and (
            not entry.key or not self.compact_retain_keyed
        )

    def _maybe_compact(self) -> None:
        if not self.auto_compact:
            return
        with self._lock:
            if not self._open:
                return
            droppable = sum(1 for e in self.entries.values() if self._droppable(e))
            if droppable < self.compact_min_settled:
                return
        self.compact()

    def compact(self) -> int:
        """Rewrite the live records — frozen specs, unsettled entries,
        and (with ``compact_retain_keyed``, the default) keyed settled
        entries whose results must stay replayable for dedupe — into a
        fresh compact segment and drop everything older.  Returns the
        number of settled entries dropped.

        Crash-safe: the compact segment is written under a temporary
        name and renamed into place — atomically — only after every
        live record is on disk and fsync'd.  Until that rename the old
        generation is the only one open() can see, so a crash at any
        point mid-compaction loses nothing; open() removes the stale
        ``*.tmp`` file.  A journal *write* failure mid-compaction
        rolls the whole compaction back (the temporary file is
        unlinked, appends resume on the old generation) and re-raises
        the structured :class:`~repro.errors.JournalWriteError`."""
        with self._lock:
            self._check_writable()
            old = [
                n
                for n in sorted(os.listdir(self.path))
                if segment_index(n) is not None
            ]
            if self.fsync_policy != "never":
                self._os.fsync(self._fd)
                self._m_fsyncs.inc()
            self._os.close(self._fd)
            self._fd = None
            prev_index, prev_size = self._seg_index, self._seg_size
            dropped = sum(1 for e in self.entries.values() if self._droppable(e))
            keep = sorted(
                (e for e in self.entries.values() if not self._droppable(e)),
                key=lambda e: e.jid,
            )
            index = prev_index + 1
            final_path = os.path.join(self.path, segment_name(index))
            tmp_path = final_path + TMP_SUFFIX
            try:
                self._compacting = True
                self._fd = self._os.open(
                    tmp_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
                self._seg_index = index
                self._seg_size = 0
                self._append(
                    {"kind": "segment_header", "index": index, "compact": True}
                )
                for fid in sorted(self.frozen_specs):
                    self._append(
                        {"kind": "frozen", "fid": fid,
                         "spec": self.frozen_specs[fid]}
                    )
                for entry in keep:
                    self._append(entry.accepted_record())
                for entry in keep:
                    if entry.is_settled:
                        self._append(entry.settled_record())
                if self.fsync_policy != "never":
                    self._os.fsync(self._fd)
                    self._m_fsyncs.inc()
                # the commit point: the complete, fsync'd compact
                # segment becomes visible atomically
                try:
                    self._os.rename(tmp_path, final_path)
                except OSError as exc:
                    self._m_errors.inc()
                    raise JournalWriteError(
                        "rename", segment=segment_name(index),
                        errno_code=exc.errno or 0,
                    ) from exc
            except JournalWriteError:
                # roll the whole compaction back: remove the temporary
                # segment and resume appends on the old generation,
                # which was never touched
                if self._fd is not None:
                    try:
                        self._os.close(self._fd)
                    except OSError:  # pragma: no cover - already gone
                        pass
                    self._fd = None
                try:
                    self._os.unlink(tmp_path)
                except OSError:  # pragma: no cover - never created
                    pass
                self._seg_index, self._seg_size = prev_index, prev_size
                self._fd = self._os.open(
                    os.path.join(self.path, segment_name(prev_index)),
                    os.O_WRONLY,
                )
                os.lseek(self._fd, prev_size, os.SEEK_SET)
                raise
            finally:
                self._compacting = False
            try:
                self._os.fsync_dir(self.path)
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            # the compact generation is durable: drop the discarded
            # settled entries from memory and the old segments from disk
            for jid in [j for j, e in self.entries.items() if self._droppable(e)]:
                entry = self.entries.pop(jid)
                if entry.key:
                    self.by_key.pop(entry.key, None)
            for name in old:
                self._os.unlink(os.path.join(self.path, name))
            try:
                self._os.fsync_dir(self.path)
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._m_compactions.inc()
            return dropped


__all__ = [
    "Journal",
    "JournalEntry",
    "OpenReport",
    "MARKER",
    "FRAME_OVERHEAD",
    "RECORD_KINDS",
    "SAFE_GLOBALS",
    "TMP_SUFFIX",
    "encode_record",
    "decode_payload",
    "scan_bytes",
    "segment_name",
    "segment_index",
    "is_tmp_segment",
]
