"""Durable submission journal + crash-consistent gateway recovery.

The gateway (PR 8/9) survives *worker* death; this package makes it
survive its *own* death.  A :class:`Journal` is an append-only,
checksummed, fsync'd write-ahead log the gateway writes through:
``accepted`` is journaled before the client sees a submission handle,
``settled`` is journaled before the client's Result resolves, and a
client-supplied ``idempotency_key=`` dedupes resubmission after a
crash — a replayed key returns the journaled settlement instead of
re-running.  :meth:`repro.gateway.Gateway.recover` replays the log on
restart and guarantees every journaled submission reaches exactly one
settlement (docs/durability.md).

Layout:

- :mod:`~repro.durability.journal` — segment files, CRC-framed
  records, torn-tail truncation, rotation + compaction;
- :mod:`~repro.durability.osshim` — injectable system-call surface
  (:class:`FaultyOs` schedules fsync failures, short writes, ENOSPC);
- :mod:`~repro.durability.fsck` — read-only validation
  (``repro fsck <journal>``);
- :mod:`~repro.durability.soak` — the gateway crash soak
  (``python -m repro soak --gateway --crash``), imported lazily so
  importing the journal never drags in the gateway.
"""

from repro.durability.fsck import FsckFinding, FsckReport, fsck
from repro.durability.journal import (
    Journal,
    JournalEntry,
    OpenReport,
    encode_record,
    scan_bytes,
    segment_index,
    segment_name,
)
from repro.durability.osshim import FaultyOs, OsFacade

__all__ = [
    "Journal",
    "JournalEntry",
    "OpenReport",
    "encode_record",
    "scan_bytes",
    "segment_name",
    "segment_index",
    "OsFacade",
    "FaultyOs",
    "fsck",
    "FsckReport",
    "FsckFinding",
    "run_gateway_crash_soak",
    "CrashScenario",
    "CrashSoakReport",
]


def __getattr__(name):  # lazy: the soak pulls in repro.gateway
    if name in ("run_gateway_crash_soak", "CrashScenario", "CrashSoakReport"):
        from repro.durability import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
