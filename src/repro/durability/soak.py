"""Gateway crash soak: SIGKILL the *gateway*, recover from the journal.

The gateway soak (PR 8/9) kills workers and proves the pool heals; this
sweep kills the gateway process itself and proves the durable journal
makes that survivable.  ``python -m repro soak --gateway --crash``
drives three seeded scenario families:

- **crash cycles** — a child process brings up a journaled gateway,
  freezes a topology, and streams keyed submissions; the parent waits
  until the journal proves at least K acceptances landed, SIGKILLs the
  child mid-stream, then starts a *second* child against the same
  journal.  That child runs :meth:`repro.gateway.Gateway.recover`,
  replays **every** planned idempotency key, drains, and reports.  The
  parent reconciles: no corruption, exactly one ``accepted`` and one
  ``settled`` per key, dedup hits equal to the pre-crash acceptance
  count, pinned-instance entries settled ``worker_lost`` /
  ``reason="not_replayable"`` and nothing else;
- **journal fault scenarios** — a journal on a :class:`FaultyOs` takes
  a scheduled fsync failure / short write / ``EIO`` / ``ENOSPC``
  mid-batch (or a torn tail / bit flip applied to the closed files) and
  must fail *structured*: the poisoned append raises
  :class:`~repro.errors.JournalWriteError` with the matching reason and
  is rolled back, a reopen sees every surviving record, a bit flip in a
  sealed segment refuses to open at all;
- **clean keyed traffic** — one shared journaled gateway serves keyed
  submissions, then every key is resubmitted: the replay must return
  the identical outcome without appending a single new record.

Every scenario derives from the sweep seed; violations are collected,
never asserted mid-flight, and the report is the committed
``BENCH_gateway_crash_soak.json`` artifact (schema
:data:`CRASH_SOAK_SCHEMA`).  See docs/durability.md ("Crash soak").
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import random
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.durability.fsck import fsck
from repro.durability.journal import Journal
from repro.durability.osshim import FaultyOs
from repro.errors import JournalCorruptError, JournalWriteError
from repro.utils.rng import derive_seed

CRASH_SOAK_SCHEMA = "repro.gateway-crash-soak-report/1"

#: scenario index -> family (crash cycles are every 5th scenario, so a
#: 50-scenario sweep performs 10 full SIGKILL + recover cycles)
_CRASH_SLOT = 4
_FAULT_SLOT = 2

_RUN_DEADLINE_S = 60.0
_RECOVER_DEADLINE_S = 180.0
_FAULT_KINDS = ("fsync", "short_write", "write", "enospc", "torn", "bitflip")


# ---------------------------------------------------------------------------
# report shapes
# ---------------------------------------------------------------------------
@dataclass
class CrashScenario:
    """One reconciled scenario (``kind`` is crash / fault / clean)."""

    index: int
    kind: str
    seed: int
    wall_s: float = 0.0
    detail: Dict = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "seed": self.seed,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 4),
            "detail": self.detail,
            "violations": list(self.violations),
        }


@dataclass
class CrashSoakReport:
    """The full sweep: scenarios, counters, and the final journal audit."""

    seed: int
    scenarios: List[CrashScenario] = field(default_factory=list)
    gateway_counters: Dict[str, float] = field(default_factory=dict)
    final_fsck: Dict = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)  # sweep-level
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and all(s.ok for s in self.scenarios)

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def all_violations(self) -> List[str]:
        out = list(self.violations)
        for s in self.scenarios:
            out.extend(f"[{s.kind} {s.index}] {v}" for v in s.violations)
        return out

    @property
    def totals(self) -> Dict[str, int]:
        t = {
            "scenarios": len(self.scenarios),
            "crash_cycles": 0,
            "kills": 0,
            "fault_injections": 0,
            "submitted": 0,
            "dedup_hits": 0,
            "resubmitted": 0,
            "not_replayable": 0,
            "violations": len(self.all_violations),
        }
        for s in self.scenarios:
            d = s.detail
            if s.kind == "crash":
                t["crash_cycles"] += 1
                t["kills"] += int(d.get("killed", 0))
                t["resubmitted"] += int(d.get("resubmitted", 0))
                t["not_replayable"] += int(d.get("not_replayable", 0))
            if s.kind == "fault":
                t["fault_injections"] += int(d.get("injected", 0))
            t["submitted"] += int(d.get("submitted", 0))
            t["dedup_hits"] += int(d.get("dedup_hits", 0))
        return t

    def to_dict(self) -> dict:
        return {
            "schema": CRASH_SOAK_SCHEMA,
            "seed": self.seed,
            "ok": self.ok,
            "cpu_count": os.cpu_count() or 1,
            "num_scenarios": self.num_scenarios,
            "totals": self.totals,
            "gateway_counters": dict(self.gateway_counters),
            "final_fsck": dict(self.final_fsck),
            "violations": self.all_violations,
            "wall_s": round(self.wall_s, 3),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# crash-cycle child processes (spawned; must be importable, main-guarded
# by virtue of living in this module rather than __main__)
# ---------------------------------------------------------------------------
def _host_main(mode: str, journal_path: str, plan_json: str,
               result_path: str, seed: int) -> None:
    """Entry point of a crash-cycle child (spawn context).

    ``mode="run"`` streams the plan's keyed submissions and then parks
    until the parent's SIGKILL; ``mode="recover"`` recovers the same
    journal, replays every key, drains, and writes *result_path*.
    """
    plan = json.loads(plan_json)
    if mode == "run":
        asyncio.run(_host_run(journal_path, plan))
    else:
        asyncio.run(_host_recover(journal_path, plan, result_path, seed))


def _plan_target(gw, item: dict, fh):
    from repro.gateway import BurstSpec

    kind = item["kind"]
    if kind == "frozen" and fh is not None:
        return fh
    if kind == "instance":
        return gw.instance(BurstSpec(width=2, sleep_s=item["sleep_s"]))
    return BurstSpec(width=2, sleep_s=item["sleep_s"])


async def _host_run(journal_path: str, plan: List[dict]) -> None:
    from repro.gateway import BurstSpec, Gateway, WorkerConfig

    gw = Gateway(
        2,
        worker=WorkerConfig(threads=2, gpus=1),
        journal=journal_path,
        name="crash-run",
    )
    await gw.start()
    # frozen before any submission: the fid record is durable first,
    # so recovery can always re-ship it (pipe FIFO per worker)
    fh = await gw.freeze(BurstSpec(width=4, sleep_s=0.05))
    subs = []
    for item in plan:
        subs.append(
            gw.submit(_plan_target(gw, item, fh), idempotency_key=item["key"])
        )
        await asyncio.sleep(item["gap_s"])
    await asyncio.gather(*(s.future for s in subs))
    # everything settled before the parent pulled the trigger: park
    # here so the SIGKILL still lands on a live, journaled gateway
    await asyncio.sleep(_RUN_DEADLINE_S * 2)


async def _host_recover(journal_path: str, plan: List[dict],
                        result_path: str, seed: int) -> None:
    from repro.gateway import BurstSpec, Gateway, WorkerConfig

    out: Dict = {"recover": None, "outcomes": {}, "drained": False}
    async with Gateway(
        2,
        worker=WorkerConfig(threads=2, gpus=1),
        journal=journal_path,
        name="crash-recover",
    ) as gw:
        report = await gw.recover()
        out["recover"] = report.to_dict()
        fh = gw.frozen_handles().get(1)
        for item in plan:
            # client-side replay of every planned key: journaled keys
            # must dedupe (settled -> journaled Result, in-flight ->
            # the recovery handle); keys the crash swallowed run fresh.
            # The target is deliberately a throwaway spec — the key
            # wins over the payload, by design.
            if item["kind"] == "frozen" and fh is not None:
                sub = gw.submit(fh, idempotency_key=item["key"])
            else:
                sub = gw.submit(
                    BurstSpec(width=1), idempotency_key=item["key"]
                )
            res = await sub
            out["outcomes"][item["key"]] = {
                "outcome": res.outcome,
                "reason": res.reason,
            }
        snap = gw.snapshot()
        out["counters"] = {
            k: snap.get(k, 0.0)
            for k in (
                "journal.appends",
                "journal.dedup_hits",
                "journal.errors",
                "gateway.recover.frozen_reshipped",
                "gateway.recover.resubmitted",
                "gateway.recover.not_replayable",
                "gateway.submits",
                "gateway.settled",
            )
        }
        out["drained"] = await gw.drain(timeout=30.0)
    tmp = result_path + ".tmp"
    with open(tmp, "w") as fh_out:
        json.dump(out, fh_out)
    os.replace(tmp, result_path)


# ---------------------------------------------------------------------------
# crash cycle (parent side; blocking — the sweep runs it in an executor
# thread so the shared gateway's heartbeat loop stays live)
# ---------------------------------------------------------------------------
def _build_plan(rng: random.Random, index: int) -> List[dict]:
    n = rng.randint(5, 8)
    plan = []
    for j in range(n):
        if j == 0:
            kind = "frozen"
        elif j == 1:
            kind = "instance"
        else:
            kind = rng.choice(("spec", "frozen", "spec", "instance"))
        plan.append({
            "key": f"c{index}-k{j}",
            "kind": kind,
            # instances sleep longer so the kill reliably catches some
            # of them unsettled -> the not_replayable path gets traffic
            "sleep_s": round(rng.uniform(0.2, 0.4), 3)
            if kind == "instance" else round(rng.uniform(0.02, 0.15), 3),
            "gap_s": round(rng.uniform(0.01, 0.05), 3),
        })
    return plan


def _run_crash_cycle(index: int, sweep_seed: int,
                     journal_root: str) -> CrashScenario:
    seed = derive_seed(sweep_seed, "crash", index)
    rng = random.Random(seed)
    sc = CrashScenario(index=index, kind="crash", seed=seed)
    t0 = time.monotonic()
    plan = _build_plan(rng, index)
    kill_after = rng.randint(2, min(4, len(plan)))
    jp = os.path.join(journal_root, f"crash-{index:03d}")
    result_path = os.path.join(journal_root, f"crash-{index:03d}-result.json")
    ctx = multiprocessing.get_context("spawn")

    # -- phase 1: run, then SIGKILL mid-stream -------------------------
    runner = ctx.Process(
        target=_host_main, args=("run", jp, json.dumps(plan), "", seed)
    )
    runner.start()
    deadline = time.monotonic() + _RUN_DEADLINE_S
    accepted_at_kill = 0
    while time.monotonic() < deadline:
        if not runner.is_alive():
            sc.violations.append(
                f"run host died on its own (exit {runner.exitcode}) "
                f"before the kill"
            )
            break
        accepted_at_kill = fsck(jp).accepted
        if accepted_at_kill >= kill_after:
            break
        time.sleep(0.05)
    else:
        sc.violations.append(
            f"run host journaled {accepted_at_kill}/{kill_after} "
            f"acceptances within {_RUN_DEADLINE_S:.0f}s"
        )
    if runner.is_alive():
        os.kill(runner.pid, signal.SIGKILL)
        sc.detail["killed"] = 1
    runner.join(timeout=10.0)

    # -- phase 2: audit the orphaned journal ---------------------------
    pre = fsck(jp)
    if pre.corruptions:
        sc.violations.append(
            "corruption in the post-kill journal: "
            + "; ".join(f.kind for f in pre.corruptions)
        )
    pre_accepted = pre.accepted
    unsettled_keys = {key for _jid, key in pre.unsettled}
    kinds = {item["key"]: item["kind"] for item in plan}
    expect_nr = sum(1 for k in unsettled_keys if kinds.get(k) == "instance")
    sc.detail.update(
        accepted_at_kill=pre_accepted,
        settled_at_kill=pre.settled,
        unsettled_at_kill=len(pre.unsettled),
        torn_tail_bytes=pre.torn_tail_bytes,
        submitted=len(plan),
    )

    # -- phase 3: recover against the same journal ---------------------
    recoverer = ctx.Process(
        target=_host_main,
        args=("recover", jp, json.dumps(plan), result_path, seed),
    )
    recoverer.start()
    recoverer.join(timeout=_RECOVER_DEADLINE_S)
    if recoverer.is_alive():
        os.kill(recoverer.pid, signal.SIGKILL)
        recoverer.join(timeout=10.0)
        sc.violations.append("recover host hung; killed")
        sc.wall_s = time.monotonic() - t0
        return sc
    if recoverer.exitcode != 0:
        sc.violations.append(
            f"recover host exited {recoverer.exitcode}"
        )
        sc.wall_s = time.monotonic() - t0
        return sc
    try:
        with open(result_path) as fh:
            result = json.load(fh)
    except (OSError, ValueError) as exc:
        sc.violations.append(f"recover host wrote no result: {exc!r}")
        sc.wall_s = time.monotonic() - t0
        return sc

    # -- phase 4: reconcile ---------------------------------------------
    if not result.get("drained"):
        sc.violations.append("recovered gateway failed to drain")
    rec = result.get("recover") or {}
    sc.detail["resubmitted"] = rec.get("resubmitted", 0)
    sc.detail["not_replayable"] = rec.get("not_replayable", 0)
    sc.detail["frozen_reshipped"] = rec.get("frozen_reshipped", 0)
    if rec.get("not_replayable") != expect_nr:
        sc.violations.append(
            f"recover settled {rec.get('not_replayable')} entries "
            f"not_replayable, the journal had {expect_nr} unsettled "
            f"pinned instances"
        )
    if rec.get("resubmitted") != len(pre.unsettled) - expect_nr:
        sc.violations.append(
            f"recover resubmitted {rec.get('resubmitted')} of "
            f"{len(pre.unsettled) - expect_nr} replayable unsettled "
            f"entries"
        )
    outcomes = result.get("outcomes", {})
    for item in plan:
        got = outcomes.get(item["key"])
        if got is None:
            sc.violations.append(f"key {item['key']} never settled")
            continue
        if item["kind"] == "instance":
            ok = got["outcome"] == "completed" or (
                got["outcome"] == "worker_lost"
                and got["reason"] == "not_replayable"
            )
        else:
            ok = got["outcome"] == "completed"
        if not ok:
            sc.violations.append(
                f"key {item['key']} ({item['kind']}) settled "
                f"{got['outcome']}/{got['reason']!r}"
            )
    counters = result.get("counters", {})
    if int(counters.get("journal.dedup_hits", -1)) != pre_accepted:
        sc.violations.append(
            f"dedup hits {counters.get('journal.dedup_hits')} != "
            f"{pre_accepted} keys journaled before the kill"
        )
    sc.detail["dedup_hits"] = int(counters.get("journal.dedup_hits", 0))

    post = fsck(jp)
    if not post.clean:
        sc.violations.append(
            "post-recovery journal not clean: "
            + "; ".join(f.kind for f in post.corruptions)
        )
    if post.unsettled:
        sc.violations.append(
            f"{len(post.unsettled)} entries still unsettled after "
            f"recovery + drain"
        )
    if post.accepted != len(plan):
        sc.violations.append(
            f"{post.accepted} accepted records for {len(plan)} keys — "
            f"resubmission duplicated acceptance"
        )
    if post.settled != len(plan):
        sc.violations.append(
            f"{post.settled} settle records for {len(plan)} keys — "
            f"settlement is not exactly-once"
        )
    sc.wall_s = time.monotonic() - t0
    return sc


# ---------------------------------------------------------------------------
# journal fault scenarios (no gateway; FaultyOs + file surgery)
# ---------------------------------------------------------------------------
def _append_batch(journal: Journal, index: int, start: int, count: int,
                  *, retry: bool) -> Optional[str]:
    """Append *count* accepted records; on a JournalWriteError retry the
    same record once (``once=True`` devices recover) and return the
    structured reason."""
    reason = None
    for i in range(start, start + count):
        key = f"f{index}-{i}"
        try:
            journal.append_accepted(key=key, target="spec", tenant="fault")
        except JournalWriteError as exc:
            reason = exc.reason
            if retry:
                journal.append_accepted(key=key, target="spec", tenant="fault")
            else:
                raise
    return reason


def _run_fault_scenario(index: int, sweep_seed: int,
                        journal_root: str) -> CrashScenario:
    seed = derive_seed(sweep_seed, "fault", index)
    rng = random.Random(seed)
    fault = _FAULT_KINDS[(index // 5) % len(_FAULT_KINDS)]
    sc = CrashScenario(index=index, kind="fault", seed=seed,
                       detail={"fault": fault})
    t0 = time.monotonic()
    jp = os.path.join(journal_root, f"fault-{index:03d}")
    n = rng.randint(6, 16)
    sc.detail["records"] = n

    if fault in ("fsync", "short_write", "write", "enospc"):
        # ordinal 1 is the segment header; poison a mid-batch append
        at = rng.randint(3, n + 1)
        shim = {
            "fsync": FaultyOs(fail_fsync_at=at),
            "short_write": FaultyOs(short_write_at=at),
            "write": FaultyOs(fail_write_at=at),
            "enospc": FaultyOs(enospc_at=at),
        }[fault]
        journal = Journal(jp, os_impl=shim, fsync_policy="always")
        journal.open()
        reason = _append_batch(journal, index, 0, n, retry=True)
        settle = rng.randint(1, n)
        for jid in range(1, settle + 1):
            journal.append_settled(jid, outcome="completed")
        journal.close()
        if not shim.injected:
            sc.violations.append(f"scheduled {fault} fault never fired")
        sc.detail["injected"] = len(shim.injected)
        if reason != fault:
            sc.violations.append(
                f"expected a structured JournalWriteError({fault!r}), "
                f"got {reason!r}"
            )
        reopened = Journal(jp)
        reopened.open()
        counts = reopened.counts()
        reopened.close()
        if counts["entries"] != n or counts["settled"] != settle:
            sc.violations.append(
                f"reopen saw {counts['entries']}/{counts['settled']} "
                f"entries/settled, wrote {n}/{settle} — the rolled-back "
                f"append leaked or a good record was lost"
            )
        rep = fsck(jp)
        if not rep.clean:
            sc.violations.append("fsck found corruption after recovery")

    elif fault == "torn":
        journal = Journal(jp, fsync_policy="never")
        journal.open()
        _append_batch(journal, index, 0, n, retry=False)
        journal.close()
        seg = sorted(
            p for p in os.listdir(jp) if p.startswith("seg-")
        )[-1]
        garbage = os.urandom(rng.randint(3, 40))
        with open(os.path.join(jp, seg), "ab") as fh:
            fh.write(garbage)
        sc.detail["injected"] = 1
        sc.detail["torn_bytes"] = len(garbage)
        reopened = Journal(jp)
        reopened.open()
        truncations = reopened.open_report.torn_truncations
        counts = reopened.counts()
        reopened.close()
        if truncations != 1:
            sc.violations.append(
                f"open performed {truncations} torn-tail truncations, "
                f"expected 1"
            )
        if counts["entries"] != n:
            sc.violations.append(
                f"torn tail cost committed records: {counts['entries']} "
                f"of {n} survived"
            )
        rep = fsck(jp)
        if not rep.clean or rep.torn_tail_bytes:
            sc.violations.append("journal not clean after truncation")

    else:  # bitflip in a sealed (non-final) segment
        journal = Journal(jp, fsync_policy="never", segment_max_bytes=1024)
        journal.open()
        _append_batch(journal, index, 0, max(n, 10), retry=False)
        journal.close()
        segs = sorted(p for p in os.listdir(jp) if p.startswith("seg-"))
        if len(segs) < 2:
            sc.violations.append("bitflip setup failed to span segments")
        else:
            target = os.path.join(jp, segs[0])
            with open(target, "rb") as fh:
                data = bytearray(fh.read())
            pos = rng.randrange(len(data))
            data[pos] ^= 1 << rng.randrange(8)
            with open(target, "wb") as fh:
                fh.write(data)
            sc.detail["injected"] = 1
            sc.detail["flip_offset"] = pos
            try:
                Journal(jp).open()
            except JournalCorruptError as exc:
                sc.detail["refused"] = exc.kind
            else:
                sc.violations.append(
                    "open accepted a bit-flipped sealed segment"
                )
            rep = fsck(jp)
            if rep.clean:
                sc.violations.append("fsck missed the bit flip")

    sc.wall_s = time.monotonic() - t0
    return sc


# ---------------------------------------------------------------------------
# clean keyed traffic on the shared gateway
# ---------------------------------------------------------------------------
async def _run_clean_scenario(gw, fh, index: int,
                              sweep_seed: int) -> CrashScenario:
    from repro.gateway import BurstSpec

    seed = derive_seed(sweep_seed, "clean", index)
    rng = random.Random(seed)
    sc = CrashScenario(index=index, kind="clean", seed=seed)
    t0 = time.monotonic()
    n = rng.randint(3, 6)
    sc.detail["submitted"] = n
    subs = []
    for j in range(n):
        key = f"s{index}-k{j}"
        target = fh if rng.random() < 0.5 else BurstSpec(
            width=rng.randint(2, 6)
        )
        subs.append((key, gw.submit(target, idempotency_key=key)))
    first = {key: await sub for key, sub in subs}

    appends_before = gw.snapshot()["journal.appends"]
    dedup_before = gw.snapshot()["journal.dedup_hits"]
    for key, _sub in subs:
        # replay with a *different* payload: the key must win and the
        # journaled outcome must come back verbatim, zero new appends
        replay = await gw.submit(BurstSpec(width=1), idempotency_key=key)
        if replay.outcome != first[key].outcome:
            sc.violations.append(
                f"replayed key {key} settled {replay.outcome}, first "
                f"run settled {first[key].outcome}"
            )
    snap = gw.snapshot()
    if snap["journal.appends"] != appends_before:
        sc.violations.append(
            f"replaying settled keys appended "
            f"{snap['journal.appends'] - appends_before:.0f} records"
        )
    hits = snap["journal.dedup_hits"] - dedup_before
    if hits != n:
        sc.violations.append(
            f"{hits:.0f} dedup hits for {n} replayed keys"
        )
    sc.detail["dedup_hits"] = int(hits)
    sc.wall_s = time.monotonic() - t0
    return sc


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------
async def _run_sweep(scenarios: int, workers: int, seed: int,
                     journal_dir: Optional[str],
                     log: Optional[Callable[[str], None]]) -> CrashSoakReport:
    from repro.gateway import BurstSpec, Gateway, WorkerConfig

    def say(msg: str) -> None:
        if log:
            log(msg)

    t0 = time.monotonic()
    root = journal_dir or tempfile.mkdtemp(prefix="repro-crash-soak-")
    os.makedirs(root, exist_ok=True)
    shared = os.path.join(root, "shared")
    report = CrashSoakReport(seed=seed)
    loop = asyncio.get_running_loop()

    async with Gateway(
        workers,
        worker=WorkerConfig(threads=2, gpus=1),
        journal=shared,
        name="crash-soak",
    ) as gw:
        fh = await gw.freeze(BurstSpec(width=8))
        for i in range(scenarios):
            if i % 5 == _CRASH_SLOT:
                # blocking (child processes + polls): keep the shared
                # gateway's heartbeat loop alive by running it off-loop
                sc = await loop.run_in_executor(
                    None, _run_crash_cycle, i, seed, root
                )
            elif i % 5 == _FAULT_SLOT:
                sc = await loop.run_in_executor(
                    None, _run_fault_scenario, i, seed, root
                )
            else:
                sc = await _run_clean_scenario(gw, fh, i, seed)
            report.scenarios.append(sc)
            d = sc.detail
            if sc.kind == "crash":
                extra = (f"accepted_at_kill={d.get('accepted_at_kill')} "
                         f"resubmitted={d.get('resubmitted')} "
                         f"not_replayable={d.get('not_replayable')}")
            elif sc.kind == "fault":
                extra = f"fault={d.get('fault')} records={d.get('records')}"
            else:
                extra = (f"keys={d.get('submitted')} "
                         f"dedup={d.get('dedup_hits')}")
            say(f"  [{i + 1:>3}/{scenarios}] {sc.kind:<5} {extra} "
                f"({sc.wall_s:.2f}s) "
                f"{'ok' if sc.ok else 'VIOLATIONS: ' + str(len(sc.violations))}")

        if not await gw.drain(timeout=60.0):
            report.violations.append("shared gateway failed to drain")
        report.gateway_counters = {
            k: v for k, v in gw.snapshot().items()
            if k.startswith(("gateway.", "journal."))
        }

    # the shared journal after shutdown: consistent, fully settled, and
    # recoverable (a reopen must reconstruct it without complaint)
    final = fsck(shared)
    report.final_fsck = final.to_dict()
    if not final.clean:
        report.violations.append(
            "final fsck found corruption in the shared journal: "
            + "; ".join(f.kind for f in final.corruptions)
        )
    if final.unsettled:
        report.violations.append(
            f"shared journal drained with {len(final.unsettled)} "
            f"unsettled entries"
        )
    reopened = Journal(shared)
    reopened.open()
    counts = reopened.counts()
    reopened.close()
    if counts["entries"] != final.accepted or counts["unsettled"] != 0:
        report.violations.append(
            f"reopen disagreed with fsck: {counts} vs "
            f"accepted={final.accepted}"
        )
    report.wall_s = time.monotonic() - t0
    return report


def run_gateway_crash_soak(
    scenarios: int = 50,
    *,
    workers: int = 2,
    seed: int = 0,
    journal_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CrashSoakReport:
    """Run the gateway crash soak and return the reconciled report.

    Every 5th scenario is a full SIGKILL + journal-recovery cycle in
    child processes, every 5th (offset 2) a seeded journal fault, the
    rest keyed traffic on one long-lived journaled gateway.  *workers*
    sizes the shared gateway; crash-cycle children always use 2.
    ``journal_dir`` keeps the journals (and per-cycle result files) for
    post-mortem; by default a temp directory is used.
    """
    return asyncio.run(
        _run_sweep(scenarios, workers, seed, journal_dir, log)
    )


__all__ = [
    "CRASH_SOAK_SCHEMA",
    "CrashScenario",
    "CrashSoakReport",
    "run_gateway_crash_soak",
]
