"""Injectable OS facade for the durable journal.

Every system call the journal makes — open, write, fsync, truncate,
rename, unlink — goes through an :class:`OsFacade` instead of the
:mod:`os` module directly, for the same reason the GPU layer routes
faults through :class:`repro.resilience.FaultProfile`: durability code
is only trustworthy if its failure paths are *testable*.  The default
facade is a thin pass-through; :class:`FaultyOs` wraps it with seeded,
scriptable failures:

- **fsync failures** — the write landed in the page cache but never
  reached the platter (the classic "fsyncgate" shape);
- **short writes** — the kernel accepted only a prefix of the frame
  (interrupted write, quota edge);
- **disk full** — ``ENOSPC`` raised from ``write``;
- **hard write errors** — ``EIO`` raised from ``write``.

Faults are *scheduled by call count* (fail the k-th write / fsync), so
a test or soak scenario derives the schedule from its seed and the
failure lands deterministically mid-batch.  After the scheduled
failure fires the shim either recovers (``once=True``, default) or
keeps failing — both shapes exist in real storage.
"""

from __future__ import annotations

import errno
import os
from typing import List, Optional


class OsFacade:
    """Pass-through system-call surface used by :class:`~repro.durability.Journal`."""

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def ftruncate(self, fd: int, length: int) -> None:
        os.ftruncate(fd, length)

    def close(self, fd: int) -> None:
        os.close(fd)

    def rename(self, src: str, dst: str) -> None:
        os.rename(src, dst)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def fsync_dir(self, path: str) -> None:
        """Durably record directory mutations (segment create/delete)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class FaultyOs(OsFacade):
    """An :class:`OsFacade` with scheduled, deterministic failures.

    ``fail_write_at`` / ``fail_fsync_at`` / ``short_write_at`` /
    ``enospc_at`` name the 1-based call ordinal at which the matching
    operation fails (``None`` disables that fault class).  With
    ``once=True`` (default) the fault fires exactly once and later
    calls succeed — the "transient blip" shape; with ``once=False``
    the device stays broken.  Injected faults are tallied in
    :attr:`injected` so harnesses can assert the fault actually fired.
    """

    def __init__(
        self,
        *,
        fail_write_at: Optional[int] = None,
        fail_fsync_at: Optional[int] = None,
        short_write_at: Optional[int] = None,
        enospc_at: Optional[int] = None,
        once: bool = True,
    ) -> None:
        self.fail_write_at = fail_write_at
        self.fail_fsync_at = fail_fsync_at
        self.short_write_at = short_write_at
        self.enospc_at = enospc_at
        self.once = once
        self.writes = 0
        self.fsyncs = 0
        self.injected: List[str] = []

    def _fire(self, kind: str, at: Optional[int], count: int) -> bool:
        if at is None:
            return False
        if (count == at) if self.once else (count >= at):
            self.injected.append(kind)
            return True
        return False

    def write(self, fd: int, data: bytes) -> int:
        self.writes += 1
        if self._fire("enospc", self.enospc_at, self.writes):
            raise OSError(errno.ENOSPC, "no space left on device (injected)")
        if self._fire("write", self.fail_write_at, self.writes):
            raise OSError(errno.EIO, "I/O error (injected)")
        if self._fire("short_write", self.short_write_at, self.writes):
            n = max(1, len(data) // 2)
            os.write(fd, data[:n])
            return n
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        self.fsyncs += 1
        if self._fire("fsync", self.fail_fsync_at, self.fsyncs):
            raise OSError(errno.EIO, "fsync failed (injected)")
        os.fsync(fd)


__all__ = ["OsFacade", "FaultyOs"]
