"""Multi-node discrete-event execution of Heteroflow graphs.

Each cluster node runs the single-node scheduling model of
:class:`repro.sim.simulator.SimExecutor` (free-worker pool, LIFO ready
stack, per-slot streams, per-device kernel/copy engines); a dependency
edge whose endpoints live on different nodes pays a network message
through the producer node's egress NIC (a capacity-1 server), after
which the consumer's join counter decrements — the DtCraft-style
stream-on-edge execution model of the paper's ref [46].
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.placement import DevicePlacement
from repro.dist.cluster import ClusterSpec
from repro.dist.partition import GraphPartition, partition_graph
from repro.errors import SimulationError
from repro.sim.cost import CostModel, TaskCost
from repro.sim.events import EventQueue
from repro.sim.simulator import _Server, _Stream


@dataclass
class DistSimReport:
    """Outcome of one distributed simulated run."""

    makespan: float
    num_tasks: int
    cluster: ClusterSpec
    partition: GraphPartition
    node_core_busy: List[float]
    node_gpu_busy: List[float]
    net_busy: List[float]
    messages: int = 0
    bytes_moved: float = 0.0

    @property
    def network_utilization(self) -> float:
        if self.makespan <= 0 or not self.net_busy:
            return 0.0
        return sum(self.net_busy) / (len(self.net_busy) * self.makespan)


class DistSimExecutor:
    """Schedules one graph over a :class:`ClusterSpec` in virtual time."""

    def __init__(
        self,
        cluster: ClusterSpec,
        cost_model: Optional[CostModel] = None,
        *,
        partition: Optional[GraphPartition] = None,
    ) -> None:
        self.cluster = cluster
        self.cost_model = cost_model or CostModel()
        self._fixed_partition = partition

    def run(self, graph: Heteroflow) -> DistSimReport:
        graph.validate()
        nodes = graph.nodes
        cluster = self.cluster
        m = cluster.node
        N = cluster.num_nodes
        cm = self.cost_model

        part = self._fixed_partition or partition_graph(nodes, N, cm)

        # per-node device placement over the node's local GPUs
        placer = DevicePlacement()
        for cn in range(N):
            local = [n for n in nodes if part.assignment[n.nid] == cn]
            placer.place(local, m.num_gpus)

        q = EventQueue()
        join: Dict[int, int] = {n.nid: len(n.dependents) for n in nodes}
        done_count = 0

        node_core_busy = [0.0] * N
        node_gpu_busy = [0.0] * N
        net_busy = [0.0] * N
        messages = 0
        bytes_moved = 0.0

        workers: List[Deque[int]] = [deque(range(m.num_cores)) for _ in range(N)]
        ready: List[List[Node]] = [[] for _ in range(N)]  # LIFO stacks
        streams: Dict[Tuple[int, int, int, str], _Stream] = {}
        kernel_engines = [[_Server(m.kernel_slots) for _ in range(m.num_gpus)] for _ in range(N)]
        h2d_engines = [[_Server(m.h2d_engines) for _ in range(m.num_gpus)] for _ in range(N)]
        d2h_engines = [[_Server(m.d2h_engines) for _ in range(m.num_gpus)] for _ in range(N)]
        nics = [_Server(1) for _ in range(N)]

        def message_bytes(node: Node) -> float:
            cost = cm.cost_of(node)
            if cost.copy_bytes > 0 and node.type in (TaskType.PULL, TaskType.PUSH):
                return cost.copy_bytes
            return cluster.default_message_bytes

        def release(succ: Node) -> None:
            join[succ.nid] -= 1
            if join[succ.nid] == 0:
                task_ready(succ)

        def complete(node: Node) -> None:
            nonlocal done_count, messages, bytes_moved
            done_count += 1
            src_cn = part.assignment[node.nid]
            remote: List[Node] = []
            for succ in node.successors:
                if part.assignment[succ.nid] == src_cn:
                    release(succ)
                else:
                    remote.append(succ)
            if remote:
                nbytes = message_bytes(node)
                duration = cluster.transfer_seconds(nbytes)
                for succ in remote:
                    messages += 1
                    bytes_moved += nbytes
                    _send(src_cn, duration, nbytes, succ)

        def _send(src_cn: int, duration: float, nbytes: float, succ: Node) -> None:
            nic = nics[src_cn]

            def start() -> None:
                def finish() -> None:
                    net_busy[src_cn] += duration
                    nic.release()
                    release(succ)

                q.schedule_after(duration, finish)

            nic.acquire(start)

        # -- per-node scheduling (mirrors SimExecutor) ----------------
        def task_ready(node: Node) -> None:
            cn = part.assignment[node.nid]
            ready[cn].append(node)
            pump(cn)

        def pump(cn: int) -> None:
            while workers[cn] and ready[cn]:
                _start(cn, workers[cn].popleft(), ready[cn].pop())

        def op_duration(node: Node, cost: TaskCost) -> float:
            if node.type is TaskType.PULL:
                return m.h2d_seconds(cost.copy_bytes)
            if node.type is TaskType.PUSH:
                return m.d2h_seconds(cost.copy_bytes)
            return m.kernel_launch_overhead + cost.gpu_seconds

        def engine_for(cn: int, node: Node) -> _Server:
            dev = node.device
            assert dev is not None
            if node.type is TaskType.PULL:
                return h2d_engines[cn][dev]
            if node.type is TaskType.PUSH:
                return d2h_engines[cn][dev]
            return kernel_engines[cn][dev]

        def pick_stream(cn: int, dev: int, klass: str) -> _Stream:
            best: Optional[_Stream] = None
            best_load = -1
            for slot in range(m.num_cores):
                s = streams.get((cn, slot, dev, klass))
                if s is None:
                    s = streams[(cn, slot, dev, klass)] = _Stream()
                load = len(s.ops) + (1 if s.active else 0)
                if load == 0:
                    return s
                if best is None or load < best_load:
                    best, best_load = s, load
            assert best is not None
            return best

        def advance_stream(cn: int, stream: _Stream) -> None:
            if stream.active or not stream.ops:
                return
            stream.active = True
            node, duration = stream.ops.popleft()
            engine = engine_for(cn, node)

            def start() -> None:
                def finish() -> None:
                    node_gpu_busy[cn] += duration
                    complete(node)
                    engine.release()
                    stream.active = False
                    advance_stream(cn, stream)

                q.schedule_after(duration, finish)

            engine.acquire(start)

        def _start(cn: int, worker: int, node: Node) -> None:
            cost = cm.cost_of(node)
            if node.type is TaskType.HOST:
                duration = cost.cpu_seconds

                def host_done() -> None:
                    node_core_busy[cn] += duration
                    complete(node)
                    workers[cn].append(worker)
                    pump(cn)

                q.schedule_after(duration, host_done)
            else:
                dev = node.device
                if dev is None:
                    raise SimulationError(f"GPU task {node.name!r} unplaced on node {cn}")
                duration = op_duration(node, cost)
                klass = "kernel" if node.type is TaskType.KERNEL else "copy"

                def dispatched() -> None:
                    node_core_busy[cn] += m.dispatch_overhead
                    stream = pick_stream(cn, dev, klass)
                    stream.ops.append((node, duration))
                    advance_stream(cn, stream)
                    workers[cn].append(worker)
                    pump(cn)

                q.schedule_after(m.dispatch_overhead, dispatched)

        for n in nodes:
            if not n.dependents:
                task_ready(n)
        makespan = q.run()
        if done_count != len(nodes):
            raise SimulationError(
                f"distributed simulation stalled: {done_count}/{len(nodes)} done"
            )
        return DistSimReport(
            makespan=makespan,
            num_tasks=len(nodes),
            cluster=cluster,
            partition=part,
            node_core_busy=node_core_busy,
            node_gpu_busy=node_gpu_busy,
            net_busy=net_busy,
            messages=messages,
            bytes_moved=bytes_moved,
        )
