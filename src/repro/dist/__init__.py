"""Distributed scheduling (extension EXT-DIST).

The paper's future work: "distributing our scheduler based on [46]"
(DtCraft, the authors' distributed execution engine).  This package
implements that direction at the simulation level the rest of the
evaluation uses:

- :mod:`~repro.dist.cluster` — cluster specifications: homogeneous
  nodes (each a :class:`~repro.sim.machine.MachineSpec`) joined by a
  latency/bandwidth network fabric;
- :mod:`~repro.dist.partition` — task-graph partitioning across nodes:
  GPU placement groups are kept whole (a kernel must stay with its
  pull data), connected components are balanced across nodes by cost,
  and cross-node edges are minimized greedily;
- :mod:`~repro.dist.simulator` — a multi-node discrete-event executor:
  each node runs the same worker/stream/engine model as
  :class:`~repro.sim.simulator.SimExecutor`, and a dependency crossing
  nodes pays a network transfer through the producer's egress NIC.
"""

from repro.dist.cluster import ClusterSpec
from repro.dist.partition import GraphPartition, partition_graph
from repro.dist.simulator import DistSimExecutor, DistSimReport

__all__ = [
    "ClusterSpec",
    "DistSimExecutor",
    "DistSimReport",
    "GraphPartition",
    "partition_graph",
]
