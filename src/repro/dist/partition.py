"""Task-graph partitioning across cluster nodes.

Constraints and objectives, in priority order:

1. **Correctness** — a kernel and its source pull tasks must land on
   one node (they must even land on one *GPU*); push tasks follow
   their source pull.  All three collapse into *atoms* via the same
   union-find the device-placement pass uses.
2. **Balance** — atom costs (cpu + gpu seconds) spread across nodes.
3. **Locality** — cross-node dependency edges (which pay network
   transfers) are minimized greedily: atoms are placed in topological
   order, preferring the node holding the most already-placed
   predecessors, subject to a balance cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.node import Node, TaskType
from repro.errors import SimulationError
from repro.sim.cost import CostModel
from repro.utils.union_find import UnionFind

#: tolerated load overshoot over the running average before locality
#: yields to balance
BALANCE_SLACK = 0.25


@dataclass
class GraphPartition:
    """node-id -> cluster-node assignment plus quality metrics."""

    num_nodes: int
    assignment: Dict[int, int] = field(default_factory=dict)
    loads: List[float] = field(default_factory=list)
    cut_edges: int = 0
    total_edges: int = 0

    def node_of(self, node: Node) -> int:
        return self.assignment[node.nid]

    @property
    def cut_fraction(self) -> float:
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    @property
    def load_imbalance(self) -> float:
        busy = [l for l in self.loads if l > 0]
        if not busy:
            return 1.0
        mean = sum(self.loads) / len(self.loads)
        return max(self.loads) / mean if mean > 0 else 1.0


def _atom_cost(members: Sequence[Node], cost_model: CostModel) -> float:
    total = 0.0
    for n in members:
        c = cost_model.cost_of(n)
        total += c.cpu_seconds + c.gpu_seconds
    return max(total, 1e-9)


def partition_graph(
    nodes: Sequence[Node],
    num_cluster_nodes: int,
    cost_model: Optional[CostModel] = None,
) -> GraphPartition:
    """Partition *nodes* over *num_cluster_nodes* nodes.

    Deterministic; raises :class:`SimulationError` on an empty cluster.
    """
    if num_cluster_nodes < 1:
        raise SimulationError("cluster must have at least one node")
    cm = cost_model or CostModel()
    part = GraphPartition(num_cluster_nodes, loads=[0.0] * num_cluster_nodes)
    if not nodes:
        return part

    # 1. atoms: union kernels with their pulls; pushes with sources
    uf: UnionFind = UnionFind()
    for n in nodes:
        uf.add(n)
        if n.type is TaskType.KERNEL:
            for p in n.kernel_sources:
                uf.union(n, p)
        if n.type is TaskType.PUSH and n.source is not None:
            uf.union(n, n.source)
    # chain collapsing: a 1-1 edge (single successor meeting single
    # dependent) offers no parallelism, so cutting it can only cost a
    # network message — merge its endpoints into one atom
    for n in nodes:
        if len(n.successors) == 1 and len(n.successors[0].dependents) == 1:
            uf.union(n, n.successors[0])
    groups = uf.groups()
    atom_of: Dict[int, Node] = {}
    for root, members in groups.items():
        for m in members:
            atom_of[m.nid] = root
    atom_costs = {root.nid: _atom_cost(ms, cm) for root, ms in groups.items()}

    # 2+3. place atoms in topological order of their first member,
    # choosing max predecessor-affinity under a balance cap
    order: List[Node] = _topological(nodes)
    placed: Dict[int, int] = {}  # atom root nid -> cluster node
    total_cost = sum(atom_costs.values())
    for n in order:
        root = atom_of[n.nid]
        if root.nid in placed:
            continue
        members = groups[root]
        # affinity: edges from already-placed atoms into this atom
        affinity = [0.0] * num_cluster_nodes
        for m in members:
            for d in m.dependents:
                src_atom = atom_of[d.nid]
                if src_atom.nid in placed and src_atom.nid != root.nid:
                    affinity[placed[src_atom.nid]] += 1.0
        cap = (sum(part.loads) + atom_costs[root.nid]) / num_cluster_nodes
        cap *= 1.0 + BALANCE_SLACK

        def score(cn: int) -> Tuple[int, float, float, int]:
            over = 1 if part.loads[cn] + atom_costs[root.nid] > cap else 0
            return (over, -affinity[cn], part.loads[cn], cn)

        best = min(range(num_cluster_nodes), key=score)
        placed[root.nid] = best
        part.loads[best] += atom_costs[root.nid]
        for m in members:
            part.assignment[m.nid] = best

    # metrics
    for n in nodes:
        for s in n.successors:
            part.total_edges += 1
            if part.assignment[n.nid] != part.assignment[s.nid]:
                part.cut_edges += 1
    _ = total_cost
    return part


def _topological(nodes: Sequence[Node]) -> List[Node]:
    indeg = {n.nid: len(n.dependents) for n in nodes}
    ready = [n for n in nodes if indeg[n.nid] == 0]
    out: List[Node] = []
    i = 0
    while i < len(ready):
        n = ready[i]
        i += 1
        out.append(n)
        for s in n.successors:
            indeg[s.nid] -= 1
            if indeg[s.nid] == 0:
                ready.append(s)
    if len(out) != len(nodes):
        raise SimulationError("cannot partition a cyclic graph")
    return out
