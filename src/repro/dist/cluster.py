"""Cluster specifications for the distributed simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.machine import MachineSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: *num_nodes* copies of *node* joined by a
    full-bisection fabric.

    The fabric is modeled per-node: each node has one egress NIC
    (serializing its outbound transfers) with the given bandwidth and
    per-message latency — the level of detail DtCraft-style stream
    engines schedule against.
    """

    num_nodes: int
    node: MachineSpec
    #: network bandwidth per NIC, bytes/second (25 GbE default)
    net_bandwidth: float = 3.1e9
    #: per-message latency, seconds
    net_latency: float = 50e-6
    #: default message size for host/kernel-result edges, bytes
    default_message_bytes: float = 64 * 1024

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SimulationError("cluster needs at least one node")
        if self.net_bandwidth <= 0:
            raise SimulationError("network bandwidth must be positive")
        if self.net_latency < 0 or self.default_message_bytes < 0:
            raise SimulationError("network constants must be non-negative")

    def transfer_seconds(self, nbytes: float) -> float:
        """Virtual duration of one cross-node message of *nbytes*."""
        return self.net_latency + nbytes / self.net_bandwidth

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.num_cores

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.num_gpus
