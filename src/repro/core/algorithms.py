"""Graph analysis and refinement utilities.

The paper stresses "explicit graph construction and refinement" — these
helpers support that workflow: critical-path and parallelism analysis
against a cost model (scheduling lower bounds), structural statistics,
redundant-edge detection (transitive reduction), and graph composition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.sim.cost import CostModel


def _node_weight(node: Node, cm: CostModel, machine=None) -> float:
    """A node's standalone duration under *cm* (and optional machine
    rates for copies)."""
    cost = cm.cost_of(node)
    if node.type is TaskType.HOST:
        return cost.cpu_seconds
    if node.type is TaskType.KERNEL:
        return cost.gpu_seconds
    if machine is not None:
        if node.type is TaskType.PULL:
            return machine.h2d_seconds(cost.copy_bytes)
        return machine.d2h_seconds(cost.copy_bytes)
    # default copy rate: 12 GB/s PCIe
    return cost.copy_bytes / 12e9


def critical_path(
    graph: Heteroflow,
    cost_model: Optional[CostModel] = None,
    machine=None,
) -> Tuple[float, List[Node]]:
    """The longest weighted path: a makespan lower bound on any machine.

    Returns ``(length_seconds, nodes_on_path)``.
    """
    cm = cost_model or CostModel()
    order = graph.topological_order()
    dist: Dict[int, float] = {}
    pred: Dict[int, Optional[Node]] = {}
    for n in order:
        w = _node_weight(n, cm, machine)
        best, best_pred = 0.0, None
        for d in n.dependents:
            if dist[d.nid] > best:
                best, best_pred = dist[d.nid], d
        dist[n.nid] = best + w
        pred[n.nid] = best_pred
    if not order:
        return 0.0, []
    end = max(order, key=lambda n: dist[n.nid])
    path = [end]
    while pred[path[-1].nid] is not None:
        path.append(pred[path[-1].nid])  # type: ignore[arg-type]
    path.reverse()
    return dist[end.nid], path


def total_work(graph: Heteroflow, cost_model: Optional[CostModel] = None, machine=None) -> float:
    """Sum of all node durations (the 1-processor makespan bound)."""
    cm = cost_model or CostModel()
    return sum(_node_weight(n, cm, machine) for n in graph.nodes)


def average_parallelism(
    graph: Heteroflow, cost_model: Optional[CostModel] = None, machine=None
) -> float:
    """total work / critical path — the classic parallelism metric.

    No machine with fewer than this many (homogeneous) processors can
    hide the graph's work; no machine with more can beat the span.
    """
    span, _ = critical_path(graph, cost_model, machine)
    if span <= 0:
        return 1.0
    return total_work(graph, cost_model, machine) / span


@dataclass
class GraphStats:
    """Structural summary of a task graph."""

    num_tasks: int
    num_edges: int
    depth: int
    max_level_width: int
    counts_by_type: Dict[str, int] = field(default_factory=dict)
    max_fanout: int = 0
    max_fanin: int = 0
    num_sources: int = 0
    num_sinks: int = 0


def graph_stats(graph: Heteroflow) -> GraphStats:
    """Levelized structural statistics (validates acyclicity)."""
    order = graph.topological_order()
    level: Dict[int, int] = {}
    widths: Dict[int, int] = {}
    for n in order:
        lv = max((level[d.nid] + 1 for d in n.dependents), default=0)
        level[n.nid] = lv
        widths[lv] = widths.get(lv, 0) + 1
    counts: Dict[str, int] = {}
    for n in graph.nodes:
        counts[n.type.value] = counts.get(n.type.value, 0) + 1
    return GraphStats(
        num_tasks=len(graph.nodes),
        num_edges=sum(len(n.successors) for n in graph.nodes),
        depth=max(widths, default=0),
        max_level_width=max(widths.values(), default=0),
        counts_by_type=counts,
        max_fanout=max((len(n.successors) for n in graph.nodes), default=0),
        max_fanin=max((len(n.dependents) for n in graph.nodes), default=0),
        num_sources=sum(1 for n in graph.nodes if not n.dependents),
        num_sinks=sum(1 for n in graph.nodes if not n.successors),
    )


def redundant_edges(graph: Heteroflow) -> List[Tuple[Node, Node]]:
    """Edges implied by transitivity (removable without changing the
    partial order).  The paper's Fig.-3 discussion is exactly about
    exploiting such transitive dependencies instead of adding edges."""
    g = nx.DiGraph()
    by_id: Dict[int, Node] = {}
    for n in graph.nodes:
        by_id[n.nid] = n
        g.add_node(n.nid)
    for n in graph.nodes:
        for s in n.successors:
            g.add_edge(n.nid, s.nid)
    reduced = nx.transitive_reduction(g)
    out = []
    for u, v in g.edges:
        if not reduced.has_edge(u, v):
            out.append((by_id[u], by_id[v]))
    return out


def merge(dst: Heteroflow, src: Heteroflow) -> List[Node]:
    """Move every task of *src* into *dst* (composition).

    Handles keep working (nodes are shared, not copied); *src* is left
    empty.  Returns the moved nodes so callers can wire cross-graph
    dependencies afterwards.
    """
    moved = list(src.nodes)
    dst.nodes.extend(moved)
    src.clear()
    return moved


def linearize(graph: Heteroflow) -> None:
    """Force a total order over the current topological order.

    Debugging aid: a linearized graph executes sequentially on any
    executor, making schedules reproducible while bisecting
    concurrency bugs.
    """
    order = graph.topological_order()
    for a, b in zip(order, order[1:]):
        if b not in a.successors:
            a.precede(b)
