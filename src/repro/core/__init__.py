"""Heteroflow core: the task-graph programming model and its runtime.

Public surface:

- :class:`~repro.core.heteroflow.Heteroflow` — build a task dependency
  graph out of host / pull / push / kernel tasks;
- :class:`~repro.core.executor.Executor` — run graphs over N CPU worker
  threads and M (simulated) GPUs with automatic device placement,
  work stealing, per-worker streams and pooled device memory;
- task handles (:class:`~repro.core.task.HostTask`, ...) returned by the
  graph-construction methods, supporting ``precede``/``succeed`` and
  kernel shape configuration.
"""

from repro.core.algorithms import (
    average_parallelism,
    critical_path,
    graph_stats,
    redundant_edges,
)
from repro.core.executor import Executor
from repro.core.heteroflow import Heteroflow
from repro.core.node import TaskType
from repro.core.observer import ExecutorObserver, TraceObserver
from repro.core.patterns import gpu_map, parallel_for, pipeline, reduce_tree
from repro.core.placement import DevicePlacement, PlacementResult
from repro.core.serialize import graph_to_dict, graph_to_json, skeleton_from_dict
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task
from repro.core.topology import FrozenTopology, ReplayTopology

__all__ = [
    "DevicePlacement",
    "Executor",
    "ExecutorObserver",
    "FrozenTopology",
    "Heteroflow",
    "HostTask",
    "KernelTask",
    "PlacementResult",
    "PullTask",
    "PushTask",
    "ReplayTopology",
    "Task",
    "TaskType",
    "TraceObserver",
    "average_parallelism",
    "critical_path",
    "gpu_map",
    "graph_stats",
    "graph_to_dict",
    "graph_to_json",
    "parallel_for",
    "pipeline",
    "redundant_edges",
    "reduce_tree",
    "skeleton_from_dict",
]
