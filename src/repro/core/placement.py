"""Device placement — Algorithm 1 of the paper.

Maps every GPU task to a concrete device before execution:

1. **Grouping** (union-find): each kernel is unioned with its source
   pull tasks, so a kernel and the data it reads always land on the
   same GPU.  Kernels sharing a pull task merge transitively into one
   group.
2. **Bin packing** (balanced load): each group root is packed onto the
   GPU bin with minimum accumulated cost.  The default cost metric is
   the group's total pulled bytes plus a per-kernel weight (so both
   memory pressure and compute spread out); the metric is pluggable,
   matching the paper's "can expose this strategy to a pluggable
   interface for custom cost metrics".

Push tasks are not packed: they inherit the device of their source pull
task (their stream "is guaranteed to live in the same GPU context as
the source pull task", Listing 6 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.node import Node, TaskType
from repro.errors import ExecutorError
from repro.utils.union_find import UnionFind

#: Cost metric signature: group members -> nonnegative load contribution.
CostMetric = Callable[[Sequence[Node]], float]

#: Synthetic weight added per kernel so compute-only groups still spread.
KERNEL_WEIGHT = 1024.0


def default_cost_metric(group: Sequence[Node]) -> float:
    """Pulled bytes + per-kernel weight for one placement group."""
    cost = 0.0
    for n in group:
        if n.type is TaskType.PULL and n.span is not None:
            try:
                cost += float(n.span.size_bytes())
            except Exception:
                # span not resolvable yet (host task will populate it);
                # fall back to a nominal unit so packing still balances
                cost += KERNEL_WEIGHT
        elif n.type is TaskType.KERNEL:
            cost += KERNEL_WEIGHT
    return max(cost, 1.0)


def snapshot_assignment(nodes: Sequence[Node]) -> "Tuple[Tuple[Node, int], ...]":
    """Capture the current ``(node, device)`` assignment of every GPU
    task among *nodes* as an immutable snapshot.

    Used by the executor's compiled-plan cache (docs/runtime.md,
    "Freeze and replay"): a frozen graph is placed once and the
    snapshot re-applied per replay with :func:`apply_assignment`,
    instead of re-running Algorithm 1 per submission.
    """
    return tuple((n, n.device) for n in nodes if n.type.is_gpu)


def apply_assignment(pairs: "Tuple[Tuple[Node, int], ...]") -> None:
    """Write a :func:`snapshot_assignment` snapshot back onto its nodes.

    Device ordinals live on the shared graph nodes, so interleaved
    fresh runs or a sibling submission's recovery pass may have moved
    them since the snapshot was taken; re-applying restores the cached
    plan's assignment in O(GPU tasks) with no union-find or packing.
    """
    for node, device in pairs:
        node.device = device


@dataclass
class PlacementResult:
    """Outcome of one placement pass (inspection/testing aid)."""

    #: node -> assigned GPU ordinal (covers pull/kernel/push nodes)
    assignment: Dict[int, int] = field(default_factory=dict)
    #: per-GPU accumulated cost after packing
    loads: List[float] = field(default_factory=list)
    #: group root node-id -> member node-ids
    groups: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def device_of(self, node: Node) -> int:
        return self.assignment[node.nid]

    @property
    def load_imbalance(self) -> float:
        """max/mean load ratio; 1.0 is perfectly balanced."""
        busy = [l for l in self.loads if l > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(self.loads)
        return max(self.loads) / mean if mean > 0 else 1.0


class DevicePlacement:
    """Union-find grouping + balanced-load bin packing (Algorithm 1)."""

    def __init__(self, cost_metric: Optional[CostMetric] = None) -> None:
        self.cost_metric = cost_metric or default_cost_metric

    def place(self, nodes: Sequence[Node], num_gpus: int) -> PlacementResult:
        """Assign ``node.device`` for every GPU task among *nodes*.

        Raises :class:`ExecutorError` if GPU tasks exist but
        ``num_gpus == 0``.
        """
        gpu_nodes = [n for n in nodes if n.type.is_gpu]
        result = PlacementResult(loads=[0.0] * num_gpus)
        if not gpu_nodes:
            return result
        if num_gpus <= 0:
            raise ExecutorError(
                "graph contains GPU tasks but the executor has no GPUs"
            )

        # lines 1-7: union each kernel with its source pull tasks
        uf: UnionFind = UnionFind()
        for n in gpu_nodes:
            if n.type in (TaskType.PULL, TaskType.KERNEL):
                uf.add(n)
            if n.type is TaskType.KERNEL:
                for p in n.kernel_sources:
                    uf.union(n, p)

        # lines 8-14: pack each unique group onto the least-loaded bin.
        # Pack larger groups first (best-fit-decreasing) for tighter
        # balance; the greedy choice per group is the paper's
        # set_bin_packing_with_balanced_load.
        groups = uf.groups()
        weighted = sorted(
            ((self.cost_metric(members), root, members) for root, members in groups.items()),
            key=lambda t: (-t[0], t[1].nid),
        )
        for cost, root, members in weighted:
            bin_ = min(range(num_gpus), key=lambda g: (result.loads[g], g))
            result.loads[bin_] += cost
            result.groups[root.nid] = [m.nid for m in members]
            for m in members:
                m.device = bin_
                result.assignment[m.nid] = bin_

        # push tasks inherit their source pull task's device
        for n in gpu_nodes:
            if n.type is TaskType.PUSH:
                src = n.source
                if src is None or src.device is None:
                    raise ExecutorError(
                        f"push task {n.name!r} has no placed source pull task"
                    )
                n.device = src.device
                result.assignment[n.nid] = src.device
        return result
