"""Graph nodes: the internal storage behind task handles.

A node stores its task type, a polymorphic work payload, dependency
edges, and per-run scheduling state (join counter, assigned device,
device buffer for pull tasks).  User code never touches nodes directly;
the task-handle layer (:mod:`repro.core.task`) wraps them, exactly as
the paper's handle layer wraps graph-node pointers to "prevent users
from direct access to the internal graph storage".
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.errors import FrozenTopologyError, GraphError
from repro.gpu.kernel import LaunchConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.memory import DeviceBuffer
    from repro.utils.span import Span

_node_ids = itertools.count()


class TaskType(Enum):
    """The four task categories of the Heteroflow model.

    ``PLACEHOLDER`` marks a created-but-unassigned node; it must be
    given work (via the handle's rebind method) before execution.
    """

    HOST = "host"
    PULL = "pull"
    PUSH = "push"
    KERNEL = "kernel"
    PLACEHOLDER = "placeholder"

    @property
    def is_gpu(self) -> bool:
        return self in (TaskType.PULL, TaskType.PUSH, TaskType.KERNEL)


class Node:
    """One vertex of a task dependency graph."""

    __slots__ = (
        "nid",
        "name",
        "type",
        # edges
        "successors",
        "dependents",
        # payloads (by type)
        "callable",  # HOST
        "span",  # PULL (host-side span) / PUSH (target span)
        "source",  # PUSH: the source pull node
        "kernel_fn",  # KERNEL
        "kernel_args",  # KERNEL: raw argument list (may contain pull handles)
        "kernel_sources",  # KERNEL: gathered source pull nodes
        "kernel_reads",  # KERNEL: pulls declared read-only (hflint)
        "kernel_writes",  # KERNEL: pulls declared written (hflint)
        "launch",  # KERNEL: LaunchConfig
        # per-run scheduling state
        "join_counter",
        "device",
        "buffer",
        "_lock",
        # resilience (docs/resilience.md)
        "retry_policy",  # per-task RetryPolicy override
        "timeout_s",  # per-task deadline override (seconds)
        "fallback_fn",  # KERNEL: host fallback callable
        "pull_snapshot",  # PULL: host bytes captured at H2D completion
        "host_shadow",  # PULL: degraded-mode host-resident copy
        # freeze-and-replay (docs/runtime.md, "Freeze and replay")
        "frozen",  # True once the owning graph was frozen
    )

    def __init__(self, type_: TaskType, name: str = "") -> None:
        self.nid = next(_node_ids)
        self.name = name or f"{type_.value}{self.nid}"
        self.type = type_
        self.successors: List[Node] = []
        self.dependents: List[Node] = []
        self.callable: Optional[Callable[[], Any]] = None
        self.span: Optional["Span"] = None
        self.source: Optional[Node] = None
        self.kernel_fn: Optional[Callable] = None
        self.kernel_args: Tuple[Any, ...] = ()
        self.kernel_sources: List[Node] = []
        # declared span access modes; pulls in neither set default to
        # read-write, the conservative assumption the static analyzer
        # (repro.analysis) makes about an opaque kernel callable
        self.kernel_reads: set = set()
        self.kernel_writes: set = set()
        self.launch = LaunchConfig()
        self.join_counter = 0
        self.device: Optional[int] = None
        self.buffer: Optional["DeviceBuffer"] = None
        self._lock = threading.Lock()
        self.retry_policy = None
        self.timeout_s: Optional[float] = None
        self.fallback_fn: Optional[Callable] = None
        self.pull_snapshot = None
        self.host_shadow = None
        self.frozen = False

    # -- structure ---------------------------------------------------
    def precede(self, other: "Node") -> None:
        """Add a directed edge self -> other (idempotent duplicate-safe
        at graph level is *not* enforced; the paper allows parallel
        edges and counts each as a dependency)."""
        if other is self:
            raise GraphError(f"task {self.name!r} cannot precede itself")
        if self.frozen or other.frozen:
            raise FrozenTopologyError("precede", self.name)
        self.successors.append(other)
        other.dependents.append(self)

    @property
    def num_successors(self) -> int:
        return len(self.successors)

    @property
    def num_dependents(self) -> int:
        return len(self.dependents)

    @property
    def is_source(self) -> bool:
        """True if the node has no dependents (run-ready at start)."""
        return not self.dependents

    # -- per-run state -------------------------------------------------
    def reset_join_counter(self) -> None:
        self.join_counter = len(self.dependents)

    def release_dependency(self) -> bool:
        """Atomically decrement the join counter; True when it hits 0."""
        with self._lock:
            self.join_counter -= 1
            return self.join_counter == 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Node({self.type.value}, {self.name!r})"
