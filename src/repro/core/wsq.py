"""Unbounded work-stealing queue.

**What it models.** The paper's runtime (§III-C) gives each worker a
private task queue following the Chase-Lev discipline: the owning
worker pushes and pops at the *bottom* (LIFO — just-spawned successors
run depth-first, cache-friendly) while thieves steal from the *top*
(FIFO — taking the oldest, usually largest, work first).  The executor
holds one of these per worker plus one shared overflow queue for
submissions and GPU-callback completions (see ``docs/runtime.md``).

**Threading contract.** One designated owner thread calls :meth:`push`
and :meth:`pop`; any number of thief threads call :meth:`steal`
concurrently.  CPython cannot express the lock-free original, so a
mutex guards each queue; contention is per-victim, not global, which
preserves the scalability *structure* (no central bottleneck) even
though absolute costs differ.  ``len()``/:attr:`empty` are snapshots —
stale the moment they return — and are safe from any thread.

**Observability.** The queue records its :attr:`high_water` mark
(maximum length ever reached) inside the already-held push lock, at
the cost of one comparison; the executor exports it as the
``executor.queue_high_water`` metric (``docs/observability.md``) — a
persistent gap between one worker's mark and the others' indicates a
serial task spine or a stealing imbalance.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class WorkStealingQueue(Generic[T]):
    """Single-owner, multi-thief double-ended task queue."""

    __slots__ = ("_deque", "_lock", "_high_water")

    def __init__(self) -> None:
        self._deque: deque = deque()
        self._lock = threading.Lock()
        self._high_water = 0

    def push(self, item: T) -> None:
        """Owner-side push at the bottom."""
        with self._lock:
            self._deque.append(item)
            if len(self._deque) > self._high_water:
                self._high_water = len(self._deque)

    def pop(self) -> Optional[T]:
        """Owner-side pop at the bottom (LIFO); None when empty."""
        with self._lock:
            if self._deque:
                return self._deque.pop()
            return None

    def steal(self) -> Optional[T]:
        """Thief-side steal at the top (FIFO); None when empty."""
        with self._lock:
            if self._deque:
                return self._deque.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._deque)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def high_water(self) -> int:
        """Maximum queue length ever reached (never resets)."""
        with self._lock:
            return self._high_water


class PriorityOverflowQueue(Generic[T]):
    """The executor's shared overflow queue, ordered by priority.

    Submissions and GPU-callback completions land here (workers keep
    their private :class:`WorkStealingQueue`).  With the
    overload-protection layer (docs/runtime.md, "Submission
    lifecycle") the overflow queue is where *cross-graph* dispatch
    order is decided, so it pops the highest-priority item first — FIFO
    within a priority — instead of plain FIFO.  A locked binary heap is
    fine here: this queue is off the workers' hot path (local pops and
    steals dominate), and per-item cost stays O(log n).

    Any thread may :meth:`push`; any thread may :meth:`steal` (the
    thief-side name keeps the worker loop symmetric with
    :class:`WorkStealingQueue`).  :attr:`high_water` matches the
    work-stealing queue's observability contract.
    """

    __slots__ = ("_heap", "_lock", "_seq", "_high_water")

    def __init__(self) -> None:
        self._heap: list = []
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._high_water = 0

    def push(self, item: T, priority: int = 0) -> None:
        """Insert *item*; higher *priority* pops first."""
        with self._lock:
            heapq.heappush(self._heap, (-priority, next(self._seq), item))
            if len(self._heap) > self._high_water:
                self._high_water = len(self._heap)

    def steal(self) -> Optional[T]:
        """Pop the highest-priority (oldest within ties) item."""
        with self._lock:
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def high_water(self) -> int:
        """Maximum queue length ever reached (never resets)."""
        with self._lock:
            return self._high_water
