"""Unbounded work-stealing queue.

Follows the Chase-Lev discipline the paper's runtime uses: the owning
worker pushes and pops at the *bottom* (LIFO, cache-friendly for
just-spawned successors) while thieves steal from the *top* (FIFO,
taking the oldest — usually largest — work first).

CPython cannot express the lock-free original, so a mutex guards each
queue; contention is per-victim, not global, which preserves the
scalability *structure* (no central bottleneck) even though absolute
costs differ.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class WorkStealingQueue(Generic[T]):
    """Single-owner, multi-thief double-ended task queue."""

    __slots__ = ("_deque", "_lock")

    def __init__(self) -> None:
        self._deque: deque = deque()
        self._lock = threading.Lock()

    def push(self, item: T) -> None:
        """Owner-side push at the bottom."""
        with self._lock:
            self._deque.append(item)

    def pop(self) -> Optional[T]:
        """Owner-side pop at the bottom (LIFO); None when empty."""
        with self._lock:
            if self._deque:
                return self._deque.pop()
            return None

    def steal(self) -> Optional[T]:
        """Thief-side steal at the top (FIFO); None when empty."""
        with self._lock:
            if self._deque:
                return self._deque.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._deque)

    @property
    def empty(self) -> bool:
        return len(self) == 0
