"""Chrome-trace export for executor observers.

Writes the ``chrome://tracing`` / Perfetto JSON array format from a
:class:`~repro.core.observer.TraceObserver`, with one lane per worker
(host execution) and one per GPU (device-side completion), so real
executor runs can be inspected visually.
"""

from __future__ import annotations

import io
import json
from typing import Optional

from repro.core.observer import TraceObserver

_TYPE_COLORS = {
    "host": "thread_state_running",
    "pull": "rail_load",
    "push": "rail_response",
    "kernel": "cq_build_passed",
}


def chrome_trace_events(observer: TraceObserver) -> list:
    """Build the event list (``ph: X`` complete events, microseconds)."""
    records = observer.records
    if not records:
        return []
    t0 = min(r.begin for r in records)
    events = []
    for r in records:
        lane = f"gpu{r.device}" if r.device is not None else f"worker{r.worker_id}"
        events.append(
            {
                "name": r.name,
                "cat": r.type,
                "ph": "X",
                "ts": (r.begin - t0) * 1e6,
                "dur": max(r.duration * 1e6, 0.01),
                "pid": 1,
                "tid": lane,
                "cname": _TYPE_COLORS.get(r.type, "generic_work"),
                "args": {"type": r.type, "worker": r.worker_id, "device": r.device},
            }
        )
    return events


def dump_chrome_trace(observer: TraceObserver, stream: Optional[io.TextIOBase] = None) -> str:
    """Serialize to a chrome-trace JSON string (and *stream* if given)."""
    text = json.dumps(chrome_trace_events(observer), indent=None)
    if stream is not None:
        stream.write(text)
    return text


def write_chrome_trace(observer: TraceObserver, path: str) -> None:
    """Write a ``.json`` loadable by chrome://tracing or Perfetto."""
    with open(path, "w") as fh:
        dump_chrome_trace(observer, fh)
