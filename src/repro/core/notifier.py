"""Two-phase-commit wait/notify primitive (eventcount-lite).

The executor's adaptive work-stealing loop needs workers to sleep
without losing wakeups: a worker (1) announces intent to sleep,
(2) re-checks the queues, and (3) commits to sleeping only if nothing
arrived since the announcement.  This is Dekker-style eventcount logic;
here an epoch counter under a condition variable provides the same
guarantee: a ``notify`` that happens after ``prepare_wait`` but before
``commit_wait`` bumps the epoch and the commit returns immediately.
"""

from __future__ import annotations

import threading


class Notifier:
    """Epoch-based eventcount for sleeping work-stealing workers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._epoch = 0
        self._num_waiters = 0

    def prepare_wait(self) -> int:
        """Phase 1: announce intent; returns the observed epoch."""
        with self._cond:
            self._num_waiters += 1
            return self._epoch

    def cancel_wait(self) -> None:
        """Abort a prepared wait (the re-check found work)."""
        with self._cond:
            self._num_waiters -= 1

    def commit_wait(self, epoch: int, timeout: float | None = None) -> None:
        """Phase 2: sleep until the epoch advances past *epoch*."""
        with self._cond:
            try:
                while self._epoch == epoch:
                    if not self._cond.wait(timeout):
                        return  # timed out; caller re-checks queues
            finally:
                self._num_waiters -= 1

    def notify_one(self) -> None:
        """Wake (at least) one waiter; never lost w.r.t. prepare_wait."""
        with self._cond:
            self._epoch += 1
            self._cond.notify()

    def notify_all(self) -> None:
        with self._cond:
            self._epoch += 1
            self._cond.notify_all()

    @property
    def num_waiters(self) -> int:
        """Approximate count of workers in the wait protocol."""
        with self._cond:
            return self._num_waiters
