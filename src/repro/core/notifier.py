"""Two-phase-commit wait/notify primitive (eventcount-lite).

**What it models.** The paper's adaptive work-stealing loop (§III-C)
lets idle workers sleep without losing wakeups.  The C++ runtime uses a
Dekker-style eventcount; the guarantee it needs is: a worker
(1) *announces* intent to sleep, (2) re-checks the queues, and
(3) *commits* to sleeping only if nothing arrived since the
announcement.  Here an epoch counter under a condition variable
provides the same property: a ``notify`` that happens after
``prepare_wait`` but before ``commit_wait`` bumps the epoch and the
commit returns immediately — the wakeup cannot be lost.

**Threading contract.** Any worker thread may run the
``prepare_wait -> (cancel_wait | commit_wait)`` protocol; any thread
(workers, the submitter, GPU stream-dispatcher callbacks) may call
``notify_one``/``notify_all`` at any time.  Every method takes the
internal condition lock; the protocol's correctness depends only on
the epoch comparison, not on caller ordering.  A worker must pair each
``prepare_wait`` with exactly one ``cancel_wait`` or ``commit_wait``
(the executor's loop in ``docs/runtime.md`` shows the canonical use).

**Observability.** :attr:`notify_count` exposes the epoch — the total
number of notifications ever issued; the executor exports it as
``executor.notify_count``, and pairs it with the per-worker
``executor.sleeps``/``executor.wakeups`` counters it maintains around
``commit_wait`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import threading


class Notifier:
    """Epoch-based eventcount for sleeping work-stealing workers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._epoch = 0
        self._num_waiters = 0

    def prepare_wait(self) -> int:
        """Phase 1: announce intent; returns the observed epoch."""
        with self._cond:
            self._num_waiters += 1
            return self._epoch

    def cancel_wait(self) -> None:
        """Abort a prepared wait (the re-check found work)."""
        with self._cond:
            self._num_waiters -= 1

    def commit_wait(self, epoch: int, timeout: float | None = None) -> None:
        """Phase 2: sleep until the epoch advances past *epoch*."""
        with self._cond:
            try:
                while self._epoch == epoch:
                    if not self._cond.wait(timeout):
                        return  # timed out; caller re-checks queues
            finally:
                self._num_waiters -= 1

    def notify_one(self) -> None:
        """Wake (at least) one waiter; never lost w.r.t. prepare_wait."""
        with self._cond:
            self._epoch += 1
            self._cond.notify()

    def notify_all(self) -> None:
        with self._cond:
            self._epoch += 1
            self._cond.notify_all()

    @property
    def num_waiters(self) -> int:
        """Approximate count of workers in the wait protocol."""
        with self._cond:
            return self._num_waiters

    @property
    def notify_count(self) -> int:
        """Total notifications issued (the epoch; monotonic)."""
        with self._cond:
            return self._epoch
