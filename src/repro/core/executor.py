"""The Heteroflow executor: CPU workers + GPU co-scheduling.

Reproduces the runtime of paper §III-B/C:

- ``Executor(num_workers, num_gpus)`` spawns *uniform* CPU worker
  threads — no worker is dedicated to a GPU ("we do not dedicate a
  worker to manage a target GPU"); GPU work is dispatched by whichever
  worker picks up the task;
- submitted graphs go through **device placement** (Algorithm 1), then
  enter a **work-stealing** loop: each worker drains its local queue
  and turns thief when empty, stealing from a random victim;
- GPU tasks are invoked under an RAII :class:`ScopedDeviceContext`, on a
  **per-(worker, device) stream**, and complete asynchronously — the
  dispatching worker moves on immediately, and the stream callback
  releases successors (the event-synchronized pattern of Listing 13);
- per-device **buddy-allocator memory pools** back all pull buffers;
- ``run`` / ``run_n`` / ``run_until`` are non-blocking and return
  futures; ``wait_for_all`` blocks until every submitted graph is done;
  the whole interface is thread-safe.

Every executor also owns a :class:`~repro.metrics.MetricsRegistry`
(``executor.metrics``) fed by the worker loops — tasks executed, steal
attempts/successes, sleep/wake transitions, queue high-water marks —
plus pull-style snapshots of the GPU layer and the buddy pools; and
``run(..., metrics=True)`` profiles a single submission into a
:class:`~repro.metrics.RunReport`.  The full metric catalog is in
``docs/observability.md``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.notifier import Notifier
from repro.core.observer import ExecutorObserver
from repro.core.placement import CostMetric, DevicePlacement
from repro.core.task import PullTask
from repro.core.topology import Topology
from repro.core.wsq import WorkStealingQueue
from repro.errors import ExecutorError, KernelError
from repro.gpu.device import DEFAULT_MEMORY_BYTES, GpuRuntime, ScopedDeviceContext
from repro.gpu.kernel import launch_async
from repro.gpu.stream import Stream
from repro.metrics.registry import MetricsRegistry

#: queue items are (topology, node) pairs
WorkItem = Tuple[Topology, Node]

#: how long a committed sleeper waits before re-polling the queues;
#: bounds the cost of any lost-wakeup bug without busy spinning
_SLEEP_TIMEOUT = 0.02


class Executor:
    """Runs Heteroflow graphs over N CPU workers and M simulated GPUs."""

    def __init__(
        self,
        num_workers: Optional[int] = None,
        num_gpus: int = 0,
        *,
        gpu_memory_bytes: int = DEFAULT_MEMORY_BYTES,
        observers: Sequence[ExecutorObserver] = (),
        cost_metric: Optional[CostMetric] = None,
        seed: int = 0,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ExecutorError("executor needs at least one worker")
        if num_gpus < 0:
            raise ExecutorError("GPU count must be non-negative")
        self._num_workers = num_workers
        self._gpu_memory_bytes = gpu_memory_bytes
        self._gpu = GpuRuntime(num_gpus, gpu_memory_bytes)
        self._placement = DevicePlacement(cost_metric)
        self._observers: List[ExecutorObserver] = list(observers)

        self._queues: List[WorkStealingQueue[WorkItem]] = [
            WorkStealingQueue() for _ in range(num_workers)
        ]
        self._shared: WorkStealingQueue[WorkItem] = WorkStealingQueue()
        self._notifier = Notifier()
        self._done = False

        # metric instruments (docs/observability.md): lane counters are
        # indexed by worker id and written only by that worker's thread,
        # so the hot-path cost is one list store — no locks
        self.metrics = MetricsRegistry()
        self._m_tasks = self.metrics.lane_counter(
            "executor.tasks_executed", num_workers
        )
        self._m_flushed = self.metrics.lane_counter(
            "executor.tasks_flushed", num_workers
        )
        self._m_local = self.metrics.lane_counter("executor.local_pops", num_workers)
        self._m_shared_pops = self.metrics.lane_counter(
            "executor.shared_pops", num_workers
        )
        self._m_steal_try = self.metrics.lane_counter(
            "executor.steals_attempted", num_workers
        )
        self._m_steal_ok = self.metrics.lane_counter(
            "executor.steals_succeeded", num_workers
        )
        self._m_sleeps = self.metrics.lane_counter("executor.sleeps", num_workers)
        self._m_wakeups = self.metrics.lane_counter("executor.wakeups", num_workers)
        self.metrics.register_callback(
            "executor.queue_high_water",
            lambda: [q.high_water for q in self._queues],
        )
        self.metrics.register_callback(
            "executor.shared_queue_high_water", lambda: self._shared.high_water
        )
        self.metrics.register_callback(
            "executor.notify_count", lambda: self._notifier.notify_count
        )
        for dev in self._gpu.devices:
            self.metrics.register_callback(f"gpu{dev.ordinal}", dev.stats)

        # per-graph topology FIFO: serializes repeated submissions of
        # the same graph (join counters live on shared nodes)
        self._graph_queues: Dict[int, deque] = {}
        self._graph_lock = threading.Lock()
        # outstanding future -> topology (for cancel)
        self._futures: Dict[Future, Topology] = {}

        # outstanding-topology accounting for wait_for_all
        self._num_topologies = 0
        self._topology_cv = threading.Condition()

        # lazily created per-(worker, device) streams
        self._streams: List[Dict[int, Stream]] = [{} for _ in range(num_workers)]
        self._stream_lock = threading.Lock()

        self._tls = threading.local()
        self._seed = seed
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,), name=f"hf-worker{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def num_gpus(self) -> int:
        return self._gpu.device_count

    @property
    def gpu_runtime(self) -> GpuRuntime:
        """The executor-owned simulated GPU runtime (inspection)."""
        return self._gpu

    def add_observer(self, observer: ExecutorObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: ExecutorObserver) -> None:
        self._observers.remove(observer)

    def profile(self, graph: Heteroflow):
        """Run *graph* once under a fresh trace observer (blocking).

        Returns the :class:`~repro.core.observer.TraceObserver` with the
        run's task records — a one-liner for quick performance looks.
        """
        from repro.core.observer import TraceObserver

        obs = TraceObserver()
        self.add_observer(obs)
        try:
            self.run(graph).result()
        finally:
            self.remove_observer(obs)
        return obs

    def lint(self, graph: Heteroflow):
        """Run hflint over *graph* against this executor's pool size.

        Returns the :class:`repro.analysis.LintReport`; the HF020
        capacity prediction uses the per-device pool capacity this
        executor actually allocates (buddy-rounded), so a graph that
        lints clean here will not statically exhaust these pools.
        """
        from repro.analysis import lint as _lint

        if self.num_gpus > 0:
            pool = self._gpu.device(0).heap.capacity
        else:
            pool = self._gpu_memory_bytes
        return _lint(graph, gpu_memory_bytes=pool)

    def _lint_gate(self, graph: Heteroflow) -> None:
        self.lint(graph).raise_if_errors()

    def run(self, graph: Heteroflow, *, lint: bool = False, metrics: bool = False) -> Future:
        """Run *graph* once; non-blocking, returns a future.

        With ``lint=True`` the graph first passes through the hflint
        static analyzer (:mod:`repro.analysis`) and submission raises
        :class:`~repro.errors.LintError` on any error-severity finding
        — catching dataflow races, use-before-transfer hazards, and
        predicted pool exhaustion before any task executes.

        With ``metrics=True`` the submission is traced and profiled:
        once the returned future completes, its ``run_report``
        attribute holds a :class:`~repro.metrics.RunReport` (per-lane
        utilization, critical path with slack, steal/placement
        summaries — see docs/observability.md).  The report covers only
        this graph's tasks, but the steal/counter snapshot it embeds is
        executor-wide.
        """
        return self.run_n(graph, 1, lint=lint, metrics=metrics)

    def run_n(
        self, graph: Heteroflow, n: int, *, lint: bool = False, metrics: bool = False
    ) -> Future:
        """Run *graph* *n* times back to back; non-blocking."""
        if n < 0:
            raise ExecutorError("repeat count must be non-negative")
        if lint:
            self._lint_gate(graph)
        topology = Topology(graph, repeats=n)
        if metrics:
            return self._submit_profiled(topology)
        return self._submit(topology)

    def run_until(
        self,
        graph: Heteroflow,
        predicate: Callable[[], bool],
        *,
        lint: bool = False,
        metrics: bool = False,
    ) -> Future:
        """Run *graph* repeatedly until *predicate()* is True.

        The predicate is evaluated after each pass (do/while), on a
        worker thread; it must be thread-safe.
        """
        if not callable(predicate):
            raise ExecutorError("run_until requires a callable predicate")
        if lint:
            self._lint_gate(graph)
        topology = Topology(graph, repeats=None, predicate=predicate)
        if metrics:
            return self._submit_profiled(topology)
        return self._submit(topology)

    def cancel(self, future: Future) -> bool:
        """Request cancellation of a submission by its future.

        Tasks already executing finish; every not-yet-run task of the
        topology is flushed without running and the future resolves
        with ``CancelledError``.  Returns False when the future is not
        an outstanding submission of this executor (e.g. already done).
        """
        with self._graph_lock:
            topology = self._futures.get(future)
        if topology is None or future.done():
            return False
        topology.cancel()
        return True

    def wait_for_all(self) -> None:
        """Block until every topology submitted so far has finished."""
        with self._topology_cv:
            while self._num_topologies > 0:
                self._topology_cv.wait()

    def shutdown(self, wait: bool = True) -> None:
        """Stop workers and tear down the GPU runtime (idempotent)."""
        if wait and not self._done:
            self.wait_for_all()
        self._done = True
        self._notifier.notify_all()
        for t in self._threads:
            t.join()
        self._gpu.synchronize()
        self._gpu.destroy()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=exc[0] is None)

    # ------------------------------------------------------------------
    # submission / topology lifecycle
    # ------------------------------------------------------------------
    def _submit_profiled(self, topology: Topology) -> Future:
        """Submit under a per-run trace observer; the returned future
        carries a ``run_report`` attribute once it completes.

        The observer is executor-wide for the run's duration, but the
        report filters records down to this graph's node ids, so
        concurrent submissions of *other* graphs don't pollute it.
        (Back-to-back submissions of the *same* graph share nodes and
        would; profile those one at a time.)
        """
        from repro.core.observer import TraceObserver
        from repro.metrics.profiler import build_run_report

        obs = TraceObserver()
        self.add_observer(obs)
        t0 = time.perf_counter()
        outer: Future = Future()
        outer.run_report = None  # type: ignore[attr-defined]
        inner = self._submit(topology)
        # alias the outer future so Executor.cancel(outer) works; the
        # done callback (which always runs after this mapping exists)
        # cleans it up
        with self._graph_lock:
            self._futures[outer] = topology

        def _done(f: Future) -> None:
            wall = time.perf_counter() - t0
            try:
                self.remove_observer(obs)
            except ValueError:  # pragma: no cover - defensive
                pass
            with self._graph_lock:
                self._futures.pop(outer, None)
            exc = f.exception()
            passes = topology.passes_done
            outer.run_report = build_run_report(  # type: ignore[attr-defined]
                topology.graph,
                obs.records,
                wall_time=wall,
                num_workers=self._num_workers,
                num_gpus=self.num_gpus,
                passes=max(passes, 1),
                counters=self.metrics.snapshot(),
            )
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(f.result())

        inner.add_done_callback(_done)
        return outer

    def _submit(self, topology: Topology) -> Future:
        if self._done:
            raise ExecutorError("executor is shut down")
        graph = topology.graph
        if topology.repeats == 0 or graph.empty:
            # nothing to execute: resolve immediately with zero passes
            topology.future.set_result(0)
            return topology.future
        graph.validate()
        with self._topology_cv:
            self._num_topologies += 1
        start_now = False
        with self._graph_lock:
            q = self._graph_queues.setdefault(id(graph), deque())
            q.append(topology)
            self._futures[topology.future] = topology
            start_now = len(q) == 1
        if start_now:
            self._start_topology(topology)
        return topology.future

    def _start_topology(self, topology: Topology) -> None:
        graph = topology.graph
        for obs in self._observers:
            obs.on_topology_begin(graph.name, len(graph.nodes))
        try:
            topology.placement = self._placement.place(graph.nodes, self.num_gpus)
        except Exception as exc:  # placement failure fails the run
            topology.fail(exc)
            self._finalize_topology(topology)
            return
        self._dispatch_pass(topology)

    def _dispatch_pass(self, topology: Topology) -> None:
        graph = topology.graph
        topology.begin_pass()
        for node in graph.nodes:
            node.reset_join_counter()
        sources = [n for n in graph.nodes if n.is_source]
        for node in sources:
            self._schedule(topology, node)

    def _finalize_topology(self, topology: Topology) -> None:
        graph = topology.graph
        # release pooled pull buffers
        for node in graph.nodes:
            if node.buffer is not None:
                node.buffer.free()
                node.buffer = None
        for obs in self._observers:
            obs.on_topology_end(graph.name, len(graph.nodes))
        topology.complete()
        # start the next queued topology of this graph, if any
        next_topology: Optional[Topology] = None
        with self._graph_lock:
            self._futures.pop(topology.future, None)
            q = self._graph_queues.get(id(graph))
            if q:
                q.popleft()
                if q:
                    next_topology = q[0]
                else:
                    del self._graph_queues[id(graph)]
        with self._topology_cv:
            self._num_topologies -= 1
            self._topology_cv.notify_all()
        if next_topology is not None:
            self._start_topology(next_topology)

    # ------------------------------------------------------------------
    # scheduling plumbing
    # ------------------------------------------------------------------
    def _schedule(self, topology: Topology, node: Node) -> None:
        """Enqueue a ready node: local queue when on a worker thread
        (cache-friendly LIFO), shared queue otherwise (submitter or
        stream-callback threads)."""
        wid = getattr(self._tls, "wid", None)
        if wid is not None:
            self._queues[wid].push((topology, node))
        else:
            self._shared.push((topology, node))
        self._notifier.notify_one()

    def _next_item(self, wid: int, rng: random.Random) -> Optional[WorkItem]:
        item = self._queues[wid].pop()
        if item is not None:
            self._m_local.inc(wid)
            return item
        item = self._shared.steal()
        if item is not None:
            self._m_shared_pops.inc(wid)
            return item
        # steal from random victims; bounded rounds keep the thief
        # responsive to the sleep protocol
        n = self._num_workers
        if n > 1:
            for _ in range(2 * n):
                victim = rng.randrange(n)
                if victim == wid:
                    continue
                self._m_steal_try.inc(wid)
                item = self._queues[victim].steal()
                if item is not None:
                    self._m_steal_ok.inc(wid)
                    return item
        return None

    def _worker_loop(self, wid: int) -> None:
        self._tls.wid = wid
        rng = random.Random((self._seed << 16) ^ wid)
        while True:
            item = self._next_item(wid, rng)
            if item is not None:
                self._invoke(wid, *item)
                continue
            if self._done:
                return
            # two-phase commit sleep: announce, re-check, commit
            epoch = self._notifier.prepare_wait()
            item = self._next_item(wid, rng)
            if item is not None:
                self._notifier.cancel_wait()
                self._invoke(wid, *item)
                continue
            if self._done:
                self._notifier.cancel_wait()
                return
            self._m_sleeps.inc(wid)
            self._notifier.commit_wait(epoch, timeout=_SLEEP_TIMEOUT)
            self._m_wakeups.inc(wid)

    # ------------------------------------------------------------------
    # task invocation (visitor pattern over task types)
    # ------------------------------------------------------------------
    def _invoke(self, wid: int, topology: Topology, node: Node) -> None:
        if topology.failed:
            # fast-cancel: flush remaining nodes without running them
            self._m_flushed.inc(wid)
            self._finish_node(topology, node)
            return
        self._m_tasks.inc(wid)
        for obs in self._observers:
            obs.on_task_begin(wid, node)
        try:
            if node.type is TaskType.HOST:
                assert node.callable is not None
                node.callable()
                self._task_done(wid, topology, node)
            elif node.type is TaskType.PULL:
                self._invoke_pull(wid, topology, node)
            elif node.type is TaskType.PUSH:
                self._invoke_push(wid, topology, node)
            elif node.type is TaskType.KERNEL:
                self._invoke_kernel(wid, topology, node)
            else:
                raise ExecutorError(f"cannot execute task of type {node.type}")
        except BaseException as exc:  # noqa: BLE001 - routed to future
            topology.fail(exc)
            self._task_done(wid, topology, node)

    def _task_done(
        self,
        wid: int,
        topology: Topology,
        node: Node,
        stream: Optional[Stream] = None,
    ) -> None:
        # for GPU tasks this runs on the stream dispatcher thread, so
        # ops_executed is stable and identifies the completing op
        seq = stream.ops_executed if stream is not None else None
        for obs in self._observers:
            obs.on_task_end(wid, node, stream=stream, stream_seq=seq)
        self._finish_node(topology, node)

    def _finish_node(self, topology: Topology, node: Node) -> None:
        for succ in node.successors:
            if succ.release_dependency():
                self._schedule(topology, succ)
        if topology.node_finished():
            if topology.pass_completed():
                self._finalize_topology(topology)
            else:
                self._dispatch_pass(topology)

    # -- GPU task visitors ------------------------------------------
    def _stream_for(self, wid: int, device_ordinal: int) -> Stream:
        streams = self._streams[wid]
        s = streams.get(device_ordinal)
        if s is None:
            with self._stream_lock:
                s = streams.get(device_ordinal)
                if s is None:
                    s = self._gpu.device(device_ordinal).create_stream(f"w{wid}")
                    streams[device_ordinal] = s
        return s

    def _gpu_callback(
        self, wid: int, topology: Topology, node: Node, stream: Stream
    ) -> Callable:
        def done(err: Optional[BaseException]) -> None:
            if err is not None:
                topology.fail(err)
            self._task_done(wid, topology, node, stream=stream)

        return done

    def _invoke_pull(self, wid: int, topology: Topology, node: Node) -> None:
        assert node.span is not None and node.device is not None
        device = self._gpu.device(node.device)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, node.device)
            host = node.span.host_array()
            need = max(int(host.nbytes), 1)
            buf = node.buffer
            if buf is not None and (buf.device is not device or buf.nbytes < need):
                buf.free()
                buf = None
            if buf is None:
                buf = device.heap.allocate(need, dtype=host.dtype)
                node.buffer = buf
            else:
                buf.dtype = host.dtype
            self._gpu.memcpy_h2d_async(
                buf, host, stream, callback=self._gpu_callback(wid, topology, node, stream)
            )

    def _invoke_push(self, wid: int, topology: Topology, node: Node) -> None:
        assert node.span is not None and node.source is not None
        src = node.source.buffer
        if src is None:
            raise KernelError(
                f"push task {node.name!r} ran before its pull task "
                f"{node.source.name!r}; add the missing dependency"
            )
        device = self._gpu.device(node.device if node.device is not None else src.device.ordinal)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, device.ordinal)
            staging = np.empty(src.size, dtype=src.dtype)
            span = node.span
            inner = self._gpu_callback(wid, topology, node, stream)

            def done(err: Optional[BaseException]) -> None:
                if err is None:
                    try:
                        span.write_back(staging)
                    except BaseException as exc:  # noqa: BLE001
                        err = exc
                inner(err)

            self._gpu.memcpy_d2h_async(staging, src, stream, callback=done)

    def _invoke_kernel(self, wid: int, topology: Topology, node: Node) -> None:
        assert node.kernel_fn is not None and node.device is not None
        device = self._gpu.device(node.device)
        converted: List[Any] = []
        for arg in node.kernel_args:
            if isinstance(arg, PullTask):
                buf = arg.node.buffer
                if buf is None:
                    raise KernelError(
                        f"kernel {node.name!r} ran before pull task "
                        f"{arg.node.name!r}; add the missing dependency"
                    )
                converted.append(buf)
            else:
                converted.append(arg)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, node.device)
            launch_async(
                stream,
                node.launch,
                node.kernel_fn,
                *converted,
                callback=self._gpu_callback(wid, topology, node, stream),
            )
