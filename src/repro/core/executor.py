"""The Heteroflow executor: CPU workers + GPU co-scheduling.

Reproduces the runtime of paper §III-B/C:

- ``Executor(num_workers, num_gpus)`` spawns *uniform* CPU worker
  threads — no worker is dedicated to a GPU ("we do not dedicate a
  worker to manage a target GPU"); GPU work is dispatched by whichever
  worker picks up the task;
- submitted graphs go through **device placement** (Algorithm 1), then
  enter a **work-stealing** loop: each worker drains its local queue
  and turns thief when empty, stealing from a random victim;
- GPU tasks are invoked under an RAII :class:`ScopedDeviceContext`, on a
  **per-(worker, device) stream**, and complete asynchronously — the
  dispatching worker moves on immediately, and the stream callback
  releases successors (the event-synchronized pattern of Listing 13);
- per-device **buddy-allocator memory pools** back all pull buffers;
- ``run`` / ``run_n`` / ``run_until`` are non-blocking and return
  futures; ``wait_for_all`` blocks until every submitted graph is done;
  the whole interface is thread-safe.

Every executor also owns a :class:`~repro.metrics.MetricsRegistry`
(``executor.metrics``) fed by the worker loops — tasks executed, steal
attempts/successes, sleep/wake transitions, queue high-water marks —
plus pull-style snapshots of the GPU layer and the buddy pools; and
``run(..., metrics=True)`` profiles a single submission into a
:class:`~repro.metrics.RunReport`.  The full metric catalog is in
``docs/observability.md``.

**Fault tolerance** (docs/resilience.md).  Submissions accept a
:class:`~repro.resilience.RetryPolicy`/`ResiliencePolicy` via
``run(..., policy=...)``; tasks override with ``task.retry(...)`` and
``task.timeout(...)``.  A failed attempt never commits a trace record —
the retry loop re-schedules the node, so exact-once validation holds
across retries.  A :class:`~repro.errors.DeviceFailedError` quarantines
the device and triggers *quiescence-based recovery*: queued work of the
topology is invalidated (a generation counter), the last in-flight task
to drain runs the recovery pass, which retracts committed executions
whose data lived on the dead device, re-packs their placement groups
onto surviving GPUs (or degrades every GPU task to its registered
``.host_fallback`` when none survive), rebuilds join counters over the
remaining nodes, and re-dispatches.

**Overload protection** (docs/runtime.md, "Submission lifecycle").
An :class:`~repro.service.AdmissionController` attached at
construction (``Executor(admission=...)``) bounds outstanding
submissions by topology count and predicted device-memory footprint
(the hflint HF020 static model), with ``block``/``reject``/``shed``
backpressure.  ``run(..., deadline=, priority=)`` arms a per-submission
deadline on the shared timer wheel (firing takes the cooperative-cancel
path and records a structured ``deadline_exceeded`` event) and orders
both the graph FIFO and the cross-graph overflow queue by priority.
``drain(timeout=)`` stops admission and settles every outstanding
future; ``shutdown(wait=False)`` never strands a future — anything
still unresolved after teardown resolves with ``CancelledError``.
Progress is observable through the ``service.*`` metrics
(docs/observability.md).
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, InvalidStateError
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.notifier import Notifier
from repro.core.observer import ExecutorObserver
from repro.core.placement import (
    CostMetric,
    DevicePlacement,
    apply_assignment,
    snapshot_assignment,
)
from repro.core.task import PullTask
from repro.core.topology import FrozenTopology, ReplayTopology, Topology
from repro.core.wsq import PriorityOverflowQueue, WorkStealingQueue
from repro.errors import (
    AdmissionRejectedError,
    DeviceFailedError,
    ExecutorError,
    KernelError,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.gpu.device import DEFAULT_MEMORY_BYTES, GpuRuntime, ScopedDeviceContext
from repro.gpu.kernel import launch_async
from repro.gpu.stream import Stream
from repro.metrics.registry import MetricsRegistry
from repro.resilience.degrade import (
    kernels_without_fallback,
    replan,
    run_degraded_kernel,
    run_degraded_pull,
    run_degraded_push,
)
from repro.service.admission import (
    AdmissionController,
    predicted_footprint_bytes,
)

#: queue items are (topology, node, generation) triples; stale
#: generations are dropped by workers after a recovery pass
WorkItem = Tuple[Topology, Node, int]

#: how long a committed sleeper waits before re-polling the queues;
#: bounds the cost of any lost-wakeup bug without busy spinning
_SLEEP_TIMEOUT = 0.02

#: slots per fast-path work item: large enough to amortize queue and
#: notifier traffic over many empty host tasks, small enough that
#: thieves still find stealable chunks on wide graphs
_FAST_CHUNK = 32


class _CompiledPlan:
    """Executor-side cached plan for one :class:`FrozenTopology`.

    The frozen topology itself is executor-agnostic; the placement
    grouping and device assignment depend on this executor's GPU count
    and which devices are still alive, so they cache here, keyed by
    ``frozen.fid``.  ``alive`` snapshots the live-device set the plan
    was compiled against — any difference (a device died, or the stale
    plan was replanned in place during recovery) invalidates the entry
    and the next submission recompiles.
    """

    __slots__ = ("placement", "pairs", "alive")

    def __init__(self, placement, pairs, alive) -> None:
        self.placement = placement
        #: (node, ordinal) assignment snapshot, re-applied at each
        #: replay start (recovery of a sibling run may have moved nodes)
        self.pairs = pairs
        self.alive = alive


class _TimerThread:
    """Lazy shared timer for task deadlines and delayed retries.

    One daemon thread serves a heap of ``(when, seq, entry)`` items;
    an entry is a one-element list holding the callback, and cancelling
    simply nulls it out (the fire becomes a no-op).  Callbacks run on
    the timer thread and must be quick or re-dispatch to the executor.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._cv = threading.Condition()
        self._seq = itertools.count()
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    def schedule(self, delay: float, fn: Callable[[], None]) -> list:
        entry = [fn]
        when = time.monotonic() + max(delay, 0.0)
        with self._cv:
            if self._stopped:
                return entry
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="hf-timer", daemon=True
                )
                self._thread.start()
            heapq.heappush(self._heap, (when, next(self._seq), entry))
            self._cv.notify()
        return entry

    @staticmethod
    def cancel(entry: list) -> None:
        entry[0] = None

    def _loop(self) -> None:
        while True:
            with self._cv:
                while True:
                    if self._stopped:
                        return
                    if not self._heap:
                        self._cv.wait()
                        continue
                    when, _, entry = self._heap[0]
                    now = time.monotonic()
                    if when <= now:
                        heapq.heappop(self._heap)
                        break
                    self._cv.wait(when - now)
                fn = entry[0]
            if fn is not None:
                try:
                    fn()
                except BaseException:  # pragma: no cover - callback bug
                    pass

    def stop(self) -> None:
        with self._cv:
            self._stopped = True
            self._cv.notify()
            thread = self._thread
        if thread is not None:
            thread.join()


class _Attempt:
    """One execution attempt of one task: first-resolver-wins token.

    A GPU attempt can finish three ways — stream callback, deadline
    timer, or a synchronous raise before enqueue.  Whichever path calls
    :meth:`resolve` first owns the outcome; the others become no-ops,
    so a timed-out op that later drains cannot double-complete the
    task.
    """

    __slots__ = (
        "topology",
        "node",
        "wid",
        "gen",
        "timeout_s",
        "t0",
        "stream",
        "timer_entry",
        "fallback",
        "_resolved",
        "_lock",
    )

    def __init__(
        self,
        topology: Topology,
        node: Node,
        wid: int,
        gen: int,
        timeout_s: Optional[float],
    ) -> None:
        self.topology = topology
        self.node = node
        self.wid = wid
        self.gen = gen
        self.timeout_s = timeout_s
        self.t0 = time.perf_counter()
        self.stream: Optional[Stream] = None
        self.timer_entry: Optional[list] = None
        self.fallback = False
        self._resolved = False
        self._lock = threading.Lock()

    def resolve(self) -> bool:
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            return True


class Executor:
    """Runs Heteroflow graphs over N CPU workers and M simulated GPUs."""

    def __init__(
        self,
        num_workers: Optional[int] = None,
        num_gpus: int = 0,
        *,
        gpu_memory_bytes: int = DEFAULT_MEMORY_BYTES,
        observers: Sequence[ExecutorObserver] = (),
        cost_metric: Optional[CostMetric] = None,
        seed: int = 0,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ExecutorError("executor needs at least one worker")
        if num_gpus < 0:
            raise ExecutorError("GPU count must be non-negative")
        self._num_workers = num_workers
        self._gpu_memory_bytes = gpu_memory_bytes
        self._gpu = GpuRuntime(num_gpus, gpu_memory_bytes)
        self._placement = DevicePlacement(cost_metric)
        self._observers: List[ExecutorObserver] = list(observers)

        self._queues: List[WorkStealingQueue[WorkItem]] = [
            WorkStealingQueue() for _ in range(num_workers)
        ]
        # the shared overflow queue orders cross-graph dispatch by
        # submission priority (docs/runtime.md, submission lifecycle)
        self._shared: PriorityOverflowQueue[WorkItem] = PriorityOverflowQueue()
        self._notifier = Notifier()
        self._done = False
        self._draining = False
        self._admission = admission
        self._submit_seq = itertools.count()

        # metric instruments (docs/observability.md): lane counters are
        # indexed by worker id and written only by that worker's thread,
        # so the hot-path cost is one list store — no locks
        self.metrics = MetricsRegistry()
        self._m_tasks = self.metrics.lane_counter(
            "executor.tasks_executed", num_workers
        )
        self._m_flushed = self.metrics.lane_counter(
            "executor.tasks_flushed", num_workers
        )
        self._m_local = self.metrics.lane_counter("executor.local_pops", num_workers)
        self._m_shared_pops = self.metrics.lane_counter(
            "executor.shared_pops", num_workers
        )
        self._m_steal_try = self.metrics.lane_counter(
            "executor.steals_attempted", num_workers
        )
        self._m_steal_ok = self.metrics.lane_counter(
            "executor.steals_succeeded", num_workers
        )
        self._m_sleeps = self.metrics.lane_counter("executor.sleeps", num_workers)
        self._m_wakeups = self.metrics.lane_counter("executor.wakeups", num_workers)
        self.metrics.register_callback(
            "executor.queue_high_water",
            lambda: [q.high_water for q in self._queues],
        )
        self.metrics.register_callback(
            "executor.shared_queue_high_water", lambda: self._shared.high_water
        )
        self.metrics.register_callback(
            "executor.notify_count", lambda: self._notifier.notify_count
        )
        for dev in self._gpu.devices:
            self.metrics.register_callback(f"gpu{dev.ordinal}", dev.stats)

        # resilience counters (docs/resilience.md, docs/observability.md);
        # sharded Counters — safe from worker, dispatcher, timer threads
        self._m_retries = self.metrics.counter("resilience.retries")
        self._m_timeouts = self.metrics.counter("resilience.timeouts")
        self._m_exhausted = self.metrics.counter("resilience.exhausted")
        self._m_device_failures = self.metrics.counter(
            "resilience.device_failures"
        )
        self._m_quarantined = self.metrics.counter(
            "resilience.streams_quarantined"
        )
        self._m_replayed = self.metrics.counter("resilience.replayed_tasks")
        self._m_fallbacks = self.metrics.counter("resilience.fallback_tasks")
        self._m_degraded = self.metrics.counter(
            "resilience.degraded_topologies"
        )

        # service counters + overload gauge (docs/runtime.md submission
        # lifecycle, docs/observability.md); sharded Counters — safe
        # from submitter, worker, and timer threads
        self._m_admitted = self.metrics.counter("service.admitted")
        self._m_rejected = self.metrics.counter("service.rejected")
        self._m_shed = self.metrics.counter("service.shed")
        self._m_deadline = self.metrics.counter("service.deadline_exceeded")
        self._m_adm_blocked = self.metrics.counter("service.admission_blocked")
        self._m_drain_cancelled = self.metrics.counter(
            "service.drain_cancelled"
        )
        self._m_adm_wait = self.metrics.histogram(
            "service.admission_wait_seconds"
        )

        # freeze-and-replay counters (docs/runtime.md "Freeze and
        # replay", docs/observability.md); sharded Counters — submitter
        # and worker threads both start topologies
        self._m_replay_hits = self.metrics.counter("replay.cache_hits")
        self._m_replay_misses = self.metrics.counter("replay.cache_misses")
        self._m_plan_reuses = self.metrics.counter("replay.plan_reuses")
        self._m_fast_path = self.metrics.counter("replay.fast_path")
        self._m_replay_latency = self.metrics.histogram(
            "replay.latency_seconds"
        )
        # hfsan counters (docs/analysis.md, "Sanitizer"); sharded
        # Counters — the finish cross-check may run on any thread
        self._m_sanitized = self.metrics.counter("sanitize.runs")
        self._m_divergences = self.metrics.counter("sanitize.divergences")

        #: frozen.fid -> _CompiledPlan; guarded by the graph FIFO (one
        #: started topology per graph), so no extra lock is needed
        self._plan_cache: Dict[int, _CompiledPlan] = {}
        self.metrics.register_callback(
            "service.overload_state", self._overload_state
        )
        if admission is not None:
            self.metrics.register_callback(
                "service.topologies_in_use",
                lambda: admission.in_use_topologies,
            )
            self.metrics.register_callback(
                "service.footprint_in_use_bytes",
                lambda: admission.in_use_bytes,
            )
            self.metrics.register_callback(
                "service.admission_waiting", lambda: admission.waiting
            )

        # per-graph topology FIFO: serializes repeated submissions of
        # the same graph (join counters live on shared nodes)
        self._graph_queues: Dict[int, deque] = {}
        self._graph_lock = threading.Lock()
        # outstanding future -> topology (for cancel)
        self._futures: Dict[Future, Topology] = {}

        # outstanding-topology accounting for wait_for_all
        self._num_topologies = 0
        self._topology_cv = threading.Condition()

        # lazily created per-(worker, device) streams
        self._streams: List[Dict[int, Stream]] = [{} for _ in range(num_workers)]
        self._stream_lock = threading.Lock()

        # device liveness (docs/resilience.md): ordinals not yet failed
        self._alive_gpus: Set[int] = set(range(num_gpus))
        self._quarantine_lock = threading.Lock()
        self._timer = _TimerThread()

        self._tls = threading.local()
        self._seed = seed
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,), name=f"hf-worker{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def num_gpus(self) -> int:
        return self._gpu.device_count

    @property
    def gpu_runtime(self) -> GpuRuntime:
        """The executor-owned simulated GPU runtime (inspection)."""
        return self._gpu

    @property
    def alive_gpus(self) -> List[int]:
        """Ordinals of devices not yet failed/quarantined (sorted)."""
        with self._quarantine_lock:
            return sorted(self._alive_gpus)

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The attached admission controller, if any (inspection)."""
        return self._admission

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or shutdown) stopped admission."""
        return self._draining

    def _overload_state(self) -> int:
        """``service.overload_state`` gauge: 0 = admitting freely,
        1 = at capacity (admissions queue or fail per policy),
        2 = at capacity with submitters blocked waiting,
        3 = draining/shut down (no admission at all)."""
        if self._draining or self._done:
            return 3
        ctrl = self._admission
        if ctrl is None or not ctrl.saturated:
            return 0
        return 2 if ctrl.waiting else 1

    def add_observer(self, observer: ExecutorObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: ExecutorObserver) -> None:
        self._observers.remove(observer)

    def profile(self, graph: Heteroflow):
        """Run *graph* once under a fresh trace observer (blocking).

        Returns the :class:`~repro.core.observer.TraceObserver` with the
        run's task records — a one-liner for quick performance looks.
        """
        from repro.core.observer import TraceObserver

        obs = TraceObserver()
        self.add_observer(obs)
        try:
            self.run(graph).result()
        finally:
            self.remove_observer(obs)
        return obs

    def lint(self, graph: Union[Heteroflow, FrozenTopology]):
        """Run hflint over *graph* against this executor's pool size.

        Returns the :class:`repro.analysis.LintReport`; the HF020
        capacity prediction uses the per-device pool capacity this
        executor actually allocates (buddy-rounded), so a graph that
        lints clean here will not statically exhaust these pools.
        For a :class:`~repro.core.topology.FrozenTopology` the report
        comes from the frozen lint cache (one analysis per pool size).
        """
        from repro.analysis import lint as _lint

        if self.num_gpus > 0:
            pool = self._gpu.device(0).heap.capacity
        else:
            pool = self._gpu_memory_bytes
        if isinstance(graph, FrozenTopology):
            return graph.lint(gpu_memory_bytes=pool)
        return _lint(graph, gpu_memory_bytes=pool)

    def _lint_gate(self, graph: Union[Heteroflow, FrozenTopology]) -> None:
        self.lint(graph).raise_if_errors()

    def run(
        self,
        graph: Union[Heteroflow, FrozenTopology],
        *,
        lint: bool = False,
        metrics: bool = False,
        sanitize: bool = False,
        policy: Optional[object] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        bindings: Optional[Dict[str, Callable]] = None,
    ) -> Future:
        """Run *graph* once; non-blocking, returns a future.

        *graph* may be a :class:`~repro.core.topology.FrozenTopology`
        (from ``Heteroflow.freeze()``): the submission then replays the
        compiled plan — no validation, no placement pass, admission
        footprint from the frozen cache — and host-only graphs take a
        slot-based fast path with no per-node allocation.  *bindings*
        (frozen submissions only) maps host-task names to replacement
        callables for this submission; the graph itself stays immutable
        (docs/runtime.md, "Freeze and replay").  Deadlines, priorities,
        admission, retries, and cancellation behave exactly as for a
        fresh graph.

        With ``lint=True`` the graph first passes through the hflint
        static analyzer (:mod:`repro.analysis`) and submission raises
        :class:`~repro.errors.LintError` on any error-severity finding
        — catching dataflow races, use-before-transfer hazards, and
        predicted pool exhaustion before any task executes.

        With ``metrics=True`` the submission is traced and profiled:
        once the returned future completes, its ``run_report``
        attribute holds a :class:`~repro.metrics.RunReport` (per-lane
        utilization, critical path with slack, steal/placement
        summaries — see docs/observability.md).  The report covers only
        this graph's tasks, but the steal/counter snapshot it embeds is
        executor-wide.

        *policy* attaches a run-level
        :class:`~repro.resilience.RetryPolicy` or
        :class:`~repro.resilience.ResiliencePolicy` to every task of
        the submission; per-task ``task.retry``/``task.timeout``
        settings take precedence (docs/resilience.md).

        *deadline* (seconds from submission) bounds the whole
        submission: when it fires, the run is cancelled cooperatively —
        queued, it resolves with ``CancelledError`` immediately;
        started, the remaining tasks flush unrun — and a structured
        ``deadline_exceeded`` event is recorded.  *priority* (higher
        runs first, default 0) orders the graph's submission FIFO and
        cross-graph dispatch, drives the admission controller's waiter
        order, and decides shed victims (docs/runtime.md, "Submission
        lifecycle").
        With ``sanitize=True`` the submission runs under the hfsan
        runtime sanitizer (docs/analysis.md, "Sanitizer"): kernel span
        arguments and host-captured mutable objects are wrapped in
        recording proxies, and once the returned future completes its
        ``sanitize_report`` attribute holds a
        :class:`~repro.analysis.sanitize.SanitizeReport` cross-checking
        every observed access against the static effect inference.
        """
        return self.run_n(
            graph,
            1,
            lint=lint,
            metrics=metrics,
            sanitize=sanitize,
            policy=policy,
            deadline=deadline,
            priority=priority,
            bindings=bindings,
        )

    def _make_topology(
        self,
        graph: Union[Heteroflow, FrozenTopology],
        bindings: Optional[Dict[str, Callable]],
        **kwargs: Any,
    ) -> Topology:
        """Build the submission topology: a slot-replay
        :class:`ReplayTopology` for frozen graphs, a plain
        :class:`Topology` otherwise."""
        if isinstance(graph, FrozenTopology):
            return ReplayTopology(graph, bindings=bindings, **kwargs)
        if bindings:
            raise ExecutorError(
                "bindings= requires a FrozenTopology (Heteroflow.freeze())"
            )
        return Topology(graph, **kwargs)

    def run_n(
        self,
        graph: Union[Heteroflow, FrozenTopology],
        n: int,
        *,
        lint: bool = False,
        metrics: bool = False,
        sanitize: bool = False,
        policy: Optional[object] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        bindings: Optional[Dict[str, Callable]] = None,
    ) -> Future:
        """Run *graph* *n* times back to back; non-blocking."""
        if n < 0:
            raise ExecutorError("repeat count must be non-negative")
        if deadline is not None and deadline <= 0:
            raise ExecutorError("deadline must be positive (seconds)")
        if lint:
            self._lint_gate(graph)
        topology = self._make_topology(
            graph,
            bindings,
            repeats=n,
            policy=policy,
            priority=priority,
            deadline_s=deadline,
        )
        if sanitize:
            return self._submit_sanitized(topology, metrics=metrics)
        if metrics:
            return self._submit_profiled(topology)
        return self._submit(topology)

    def run_until(
        self,
        graph: Union[Heteroflow, FrozenTopology],
        predicate: Callable[[], bool],
        *,
        lint: bool = False,
        metrics: bool = False,
        sanitize: bool = False,
        policy: Optional[object] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        bindings: Optional[Dict[str, Callable]] = None,
    ) -> Future:
        """Run *graph* repeatedly until *predicate()* is True.

        The predicate is evaluated after each pass (do/while), on a
        worker thread; it must be thread-safe.
        """
        if not callable(predicate):
            raise ExecutorError("run_until requires a callable predicate")
        if deadline is not None and deadline <= 0:
            raise ExecutorError("deadline must be positive (seconds)")
        if lint:
            self._lint_gate(graph)
        topology = self._make_topology(
            graph,
            bindings,
            repeats=None,
            predicate=predicate,
            policy=policy,
            priority=priority,
            deadline_s=deadline,
        )
        if sanitize:
            return self._submit_sanitized(topology, metrics=metrics)
        if metrics:
            return self._submit_profiled(topology)
        return self._submit(topology)

    def cancel(self, future: Future) -> bool:
        """Request cancellation of a submission by its future.

        A topology still waiting in its graph's FIFO (not yet started)
        is removed and its future resolves with ``CancelledError``
        immediately.  For a started topology, tasks already executing
        finish; every not-yet-run task is flushed without running and
        the future resolves with ``CancelledError``.  Returns False
        when the future is not an outstanding submission of this
        executor (e.g. already done).
        """
        with self._graph_lock:
            topology = self._futures.get(future)
            if topology is None or future.done():
                return False
            removed = not topology.started and self._remove_queued_locked(
                topology
            )
            if removed:
                # drop the alias too when cancelling via a profiled
                # outer future
                self._futures.pop(future, None)
        if removed:
            # never dispatched: resolve the future here, right now
            self._resolve_removed(topology, None)
        else:
            topology.cancel()
        return True

    def wait_for_all(self) -> None:
        """Block until every topology submitted so far has finished."""
        with self._topology_cv:
            while self._num_topologies > 0:
                self._topology_cv.wait()

    def drain(self, timeout: Optional[float] = None, *, cancel_grace: float = 10.0) -> bool:
        """Stop admitting new work and settle every outstanding
        submission (docs/runtime.md, "Submission lifecycle").

        From the first call on, ``run``/``run_n``/``run_until`` raise
        :class:`~repro.errors.ExecutorError`; submitters blocked inside
        the admission controller are turned away the moment capacity
        frees for them (their capacity is handed straight back).
        In-flight and queued submissions run to completion.  Returns
        True when everything finished within *timeout* seconds
        (``None`` = wait forever).

        On timeout every straggler is cancelled — queued topologies
        resolve with ``CancelledError`` immediately; started ones take
        the cooperative flush path — and each records a structured
        ``drain_cancelled`` event.  After *cancel_grace* more seconds
        any future still unresolved (a wedged host task the runtime
        cannot interrupt) is force-resolved with ``ExecutorError``, so
        no caller blocks forever; the internal accounting settles when
        the wedged task eventually returns.  Returns False.
        """
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._topology_cv:
            while self._num_topologies > 0:
                if deadline is None:
                    self._topology_cv.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._topology_cv.wait(remaining)
            if self._num_topologies == 0:
                return True
        # timeout: cancel the stragglers (dedupe — a profiled
        # submission maps two futures to one topology)
        with self._graph_lock:
            stragglers = list(dict.fromkeys(self._futures.values()))
        for topo in stragglers:
            removed = False
            with self._graph_lock:
                if not topo.started:
                    removed = self._remove_queued_locked(topo)
            self._m_drain_cancelled.inc()
            topo.event("drain_cancelled", started=topo.started)
            if removed:
                self._resolve_removed(topo, None)
            else:
                topo.cancel()
        self._notifier.notify_all()
        grace_deadline = time.monotonic() + cancel_grace
        with self._topology_cv:
            while self._num_topologies > 0:
                remaining = grace_deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._topology_cv.wait(remaining)
        # anything still unresolved is wedged: settle the futures (the
        # run itself finalizes whenever the stuck task returns)
        for topo in stragglers:
            try:
                topo.future.set_exception(
                    ExecutorError(
                        "drain timed out and the submission did not "
                        "settle within the cancel grace period"
                    )
                )
            except InvalidStateError:
                pass
        return False

    def shutdown(
        self, wait: bool = True, drain_timeout: Optional[float] = None
    ) -> None:
        """Stop workers and tear down the GPU runtime (idempotent).

        With *drain_timeout* set, a graceful :meth:`drain` bounded by
        that many seconds runs first (``wait`` is then ignored).  With
        ``wait=False`` outstanding submissions are abandoned — but
        never stranded: after teardown, every future still unresolved
        (including topologies parked on delayed retries) resolves with
        ``CancelledError``.
        """
        self._draining = True
        if not self._done:
            if drain_timeout is not None:
                self.drain(drain_timeout)
            elif wait:
                self.wait_for_all()
        self._done = True
        self._notifier.notify_all()
        for t in self._threads:
            t.join()
        self._timer.stop()
        # destroy (not synchronize) drains each stream via its shutdown
        # sentinel; synchronizing would re-raise sticky errors and hang
        # on quarantined streams
        self._gpu.destroy()
        self._resolve_stranded()

    def _resolve_stranded(self) -> None:
        """Resolve every future left outstanding after teardown.

        Runs with all workers joined, the timer stopped, and the GPU
        dispatchers destroyed — nothing can race us, and nothing will
        ever drive these topologies again (``wait=False`` shutdowns
        abandon running passes and delayed retries mid-flight).  Every
        such future resolves with ``CancelledError`` so no caller
        blocks forever."""
        with self._graph_lock:
            stranded = list(dict.fromkeys(self._futures.values()))
            self._futures.clear()
            self._graph_queues.clear()
        for topo in stranded:
            self._cancel_topology_deadline(topo)
            topo.cancel()
            topo.complete()
            self._release_admission(topo)
        with self._topology_cv:
            if self._num_topologies:
                self._num_topologies = 0
                self._topology_cv.notify_all()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=exc[0] is None)

    # ------------------------------------------------------------------
    # submission / topology lifecycle
    # ------------------------------------------------------------------
    def _submit_profiled(self, topology: Topology) -> Future:
        """Submit under a per-run trace observer; the returned future
        carries a ``run_report`` attribute once it completes.

        The observer is executor-wide for the run's duration, but the
        report filters records down to this graph's node ids, so
        concurrent submissions of *other* graphs don't pollute it.
        (Back-to-back submissions of the *same* graph share nodes and
        would; profile those one at a time.)
        """
        from repro.core.observer import TraceObserver
        from repro.metrics.profiler import build_run_report

        obs = TraceObserver()
        self.add_observer(obs)
        t0 = time.perf_counter()
        outer: Future = Future()
        outer.run_report = None  # type: ignore[attr-defined]
        try:
            inner = self._submit(topology)
        except BaseException:
            # admission rejection / drain refusal: the done callback
            # below will never run, so detach the observer here
            try:
                self.remove_observer(obs)
            except ValueError:  # pragma: no cover - defensive
                pass
            raise
        # alias the outer future so Executor.cancel(outer) works; the
        # done callback (which always runs after this mapping exists)
        # cleans it up
        with self._graph_lock:
            self._futures[outer] = topology

        def _done(f: Future) -> None:
            wall = time.perf_counter() - t0
            try:
                self.remove_observer(obs)
            except ValueError:  # pragma: no cover - defensive
                pass
            # cleanup must be idempotent and unconditional: cancel paths
            # may have popped these already, and nothing below may stop
            # the mapping from being cleared
            with self._graph_lock:
                self._futures.pop(outer, None)
                self._futures.pop(f, None)
            exc = f.exception()
            passes = topology.passes_done
            try:
                report = build_run_report(
                    topology.graph,
                    obs.records,
                    wall_time=wall,
                    num_workers=self._num_workers,
                    num_gpus=self.num_gpus,
                    passes=max(passes, 1),
                    counters=self.metrics.snapshot(),
                    events=list(topology.events),
                )
            except Exception:  # pragma: no cover - profiler bug
                report = None
            outer.run_report = report  # type: ignore[attr-defined]
            try:
                if exc is not None:
                    outer.set_exception(exc)
                else:
                    outer.set_result(f.result())
            except InvalidStateError:
                # the outer future was cancelled/resolved independently
                pass

        inner.add_done_callback(_done)
        return outer

    def _submit_sanitized(
        self, topology: Topology, *, metrics: bool = False
    ) -> Future:
        """Submit under the hfsan runtime sanitizer; the returned future
        carries a ``sanitize_report`` attribute once it completes
        (docs/analysis.md, "Sanitizer").

        The session must be built *before* submission — effect
        inference has to see the original captured objects, and the
        recording proxies must already sit in the host closures when
        the first pass dispatches.  The fast replay path is disabled
        for the run (it invokes host slots without the per-task
        attribution hook); everything else — admission, deadlines,
        retries, metrics profiling — composes unchanged.
        """
        from repro.analysis.sanitize import SanitizerSession

        session = SanitizerSession(topology.graph)
        topology.sanitizer = session
        topology.fast = False
        outer: Future = Future()
        outer.sanitize_report = None  # type: ignore[attr-defined]
        try:
            if metrics:
                inner = self._submit_profiled(topology)
            else:
                inner = self._submit(topology)
        except BaseException:
            # admission rejection / drain refusal: the done callback
            # below will never run, so restore the closures here
            session.uninstall()
            raise
        with self._graph_lock:
            self._futures[outer] = topology

        def _done(f: Future) -> None:
            report = None
            try:
                report = session.finish()
            except Exception:  # pragma: no cover - sanitizer bug
                session.uninstall()
            self._m_sanitized.inc()
            if report is not None and report.divergences:
                self._m_divergences.inc(len(report.divergences))
            outer.sanitize_report = report  # type: ignore[attr-defined]
            if metrics:
                outer.run_report = getattr(  # type: ignore[attr-defined]
                    f, "run_report", None
                )
            with self._graph_lock:
                self._futures.pop(outer, None)
                self._futures.pop(f, None)
            exc = f.exception()
            try:
                if exc is not None:
                    outer.set_exception(exc)
                else:
                    outer.set_result(f.result())
            except InvalidStateError:
                # the outer future was cancelled/resolved independently
                pass

        inner.add_done_callback(_done)
        return outer

    def _submit(self, topology: Topology) -> Future:
        if self._done:
            raise ExecutorError("executor is shut down")
        if self._draining:
            raise ExecutorError("executor is draining; submission refused")
        graph = topology.graph
        if topology.repeats == 0 or graph.empty:
            # nothing to execute: resolve immediately with zero passes
            topology.future.set_result(0)
            return topology.future
        if topology.frozen is None:
            # frozen graphs validated at freeze() and cannot have
            # changed since; fresh graphs re-validate every submission
            graph.validate()
        else:
            topology.t_submit = time.perf_counter()
        self._admit(topology)
        if self._draining or self._done:
            # drain began while we blocked for admission: hand the
            # capacity straight back and refuse
            self._release_admission(topology)
            raise ExecutorError("executor is draining; submission refused")
        self._m_admitted.inc()
        with self._topology_cv:
            self._num_topologies += 1
        topology.submit_seq = next(self._submit_seq)
        start_now = False
        with self._graph_lock:
            q = self._graph_queues.setdefault(id(graph), deque())
            # priority insertion: before the first *queued* sibling of
            # strictly lower priority (never before the started front),
            # FIFO within a priority
            idx = len(q)
            for i in range(1 if q and q[0].started else 0, len(q)):
                if q[i].priority < topology.priority:
                    idx = i
                    break
            q.insert(idx, topology)
            self._futures[topology.future] = topology
            start_now = len(q) == 1
            if start_now:
                topology.started = True
        self._arm_topology_deadline(topology)
        if start_now:
            self._start_topology(topology)
        return topology.future

    # ------------------------------------------------------------------
    # overload protection (docs/runtime.md, "Submission lifecycle")
    # ------------------------------------------------------------------
    def _admit(self, topology: Topology) -> None:
        """Charge the submission to the admission ledger (no-op without
        a controller); raises
        :class:`~repro.errors.AdmissionRejectedError` per the policy."""
        ctrl = self._admission
        if ctrl is None:
            return
        fp = 0
        if ctrl.max_footprint_bytes is not None:
            # frozen submissions read the footprint from the one-time
            # freeze cache instead of re-deriving the capacity model
            if topology.frozen is not None:
                fp = topology.frozen.predicted_footprint()
            else:
                fp = predicted_footprint_bytes(topology.graph)
        topology.footprint_bytes = fp
        pri = topology.priority
        if not ctrl.would_ever_fit(fp):
            self._m_rejected.inc()
            raise ctrl.rejection("never_fits", priority=pri, footprint_bytes=fp)
        if ctrl.try_acquire(fp):
            topology.admitted = True
            self._m_adm_wait.observe(0.0)
            return
        if ctrl.policy == "reject":
            self._m_rejected.inc()
            raise ctrl.rejection("capacity", priority=pri, footprint_bytes=fp)
        if ctrl.policy == "shed":
            while not ctrl.try_acquire(fp):
                if not self._shed_lowest(pri):
                    self._m_rejected.inc()
                    raise ctrl.rejection(
                        "capacity", priority=pri, footprint_bytes=fp
                    )
            topology.admitted = True
            self._m_adm_wait.observe(0.0)
            return
        # block: wait for capacity; highest-priority waiter is admitted
        # first (the controller orders its waiter set)
        self._m_adm_blocked.inc()
        try:
            waited = ctrl.acquire(fp, priority=pri)
        except AdmissionRejectedError:
            self._m_rejected.inc()
            raise
        topology.admitted = True
        self._m_adm_wait.observe(waited)

    def _shed_lowest(self, priority: int) -> bool:
        """Evict the lowest-priority *queued* (never started) topology
        whose priority is strictly below *priority*; False when no such
        victim exists.  Youngest-first within a priority, so the oldest
        accepted work survives longest.  The victim's future resolves
        with a structured ``AdmissionRejectedError("shed")`` and its
        capacity returns to the ledger."""
        victim: Optional[Topology] = None
        with self._graph_lock:
            for q in self._graph_queues.values():
                for t in q:
                    if t.started or t.priority >= priority:
                        continue
                    if (
                        victim is None
                        or t.priority < victim.priority
                        or (
                            t.priority == victim.priority
                            and t.submit_seq > victim.submit_seq
                        )
                    ):
                        victim = t
            if victim is None:
                return False
            self._remove_queued_locked(victim)
        self._m_shed.inc()
        victim.event(
            "admission_shed", priority=victim.priority, by_priority=priority
        )
        assert self._admission is not None
        exc = self._admission.rejection(
            "shed",
            priority=victim.priority,
            footprint_bytes=victim.footprint_bytes,
        )
        self._resolve_removed(victim, exc)
        return True

    def _remove_queued_locked(self, topology: Topology) -> bool:
        """Unlink a not-yet-started topology from its graph queue and
        the futures map; caller holds ``_graph_lock``.  False when it is
        already started or already gone (another remover won)."""
        if topology.started:
            return False
        q = self._graph_queues.get(id(topology.graph))
        if q is None or topology not in q:
            return False
        q.remove(topology)
        if not q:
            del self._graph_queues[id(topology.graph)]
        self._futures.pop(topology.future, None)
        return True

    def _resolve_removed(
        self, topology: Topology, exc: Optional[BaseException]
    ) -> None:
        """Settle a topology removed from its graph queue before it
        started: cancel its deadline, resolve the future (*exc*, or
        ``CancelledError`` when None), return its admission capacity,
        and drop it from the outstanding count.  Must be called exactly
        once, by whichever path's :meth:`_remove_queued_locked` returned
        True, and never under ``_graph_lock`` (future callbacks run
        inline and may take it)."""
        self._cancel_topology_deadline(topology)
        if exc is None:
            topology.cancel()
        else:
            topology.fail(exc)
        topology.complete()
        self._release_admission(topology)
        with self._topology_cv:
            self._num_topologies -= 1
            self._topology_cv.notify_all()

    def _release_admission(self, topology: Topology) -> None:
        """Return the topology's admission capacity, exactly once."""
        if self._admission is not None and topology.take_admission_release():
            self._admission.release(topology.footprint_bytes)

    def _arm_topology_deadline(self, topology: Topology) -> None:
        if topology.deadline_s is None:
            return
        topology.deadline_entry = self._timer.schedule(
            topology.deadline_s, lambda: self._deadline_fire(topology)
        )

    def _cancel_topology_deadline(self, topology: Topology) -> None:
        entry = topology.deadline_entry
        if entry is not None:
            _TimerThread.cancel(entry)
            topology.deadline_entry = None

    def _deadline_fire(self, topology: Topology) -> None:
        """Timer target for a submission deadline (timer thread).

        Still queued: the topology unlinks and resolves with
        ``CancelledError`` right here.  Started: the cooperative-cancel
        path flushes the remaining tasks and the normal finalization
        resolves the future.  Either way a structured
        ``deadline_exceeded`` event is recorded."""
        if topology.future.done() or topology.failed:
            return
        removed = False
        with self._graph_lock:
            if not topology.started:
                removed = self._remove_queued_locked(topology)
        self._m_deadline.inc()
        topology.event(
            "deadline_exceeded",
            deadline_s=topology.deadline_s,
            started=topology.started,
            passes_done=topology.passes_done,
        )
        if removed:
            self._resolve_removed(topology, None)
        else:
            topology.cancel()
            self._notifier.notify_all()

    def _start_topology(self, topology: Topology) -> None:
        if topology.frozen is not None:
            self._start_frozen(topology)
            return
        graph = topology.graph
        for obs in self._observers:
            obs.on_topology_begin(graph.name, len(graph.nodes))
        try:
            alive = self.alive_gpus
            has_gpu_tasks = any(n.type.is_gpu for n in graph.nodes)
            if has_gpu_tasks and self.num_gpus > 0 and not alive:
                # every configured device already failed: degrade from
                # the start if every kernel can run on the host
                missing = kernels_without_fallback(graph.nodes)
                if missing:
                    raise ExecutorError(
                        f"no GPUs survive and kernel task "
                        f"{missing[0].name!r} has no host fallback"
                    )
                topology.degraded = True
                self._m_degraded.inc()
                topology.event("degraded", at="start", alive=[])
            else:
                topology.placement = self._placement.place(
                    graph.nodes, self.num_gpus
                )
                if has_gpu_tasks and len(alive) < self.num_gpus:
                    # some devices died before this submission: re-pack
                    # their groups onto the survivors
                    replan(
                        graph.nodes,
                        topology.placement,
                        alive,
                        self._placement.cost_metric,
                    )
        except Exception as exc:  # placement failure fails the run
            topology.fail(exc)
            self._finalize_topology(topology)
            return
        self._dispatch_pass(topology)

    # ------------------------------------------------------------------
    # freeze and replay (docs/runtime.md, "Freeze and replay")
    # ------------------------------------------------------------------
    def _start_frozen(self, topology: Topology) -> None:
        """Start a replay: reuse (or compile) the cached plan instead of
        re-running Algorithm-1 placement per submission."""
        frozen = topology.frozen
        assert frozen is not None
        graph = topology.graph
        for obs in self._observers:
            obs.on_topology_begin(graph.name, len(graph.nodes))
        if topology.fast:
            self._m_fast_path.inc()
        try:
            alive = frozenset(self._alive_gpus)
            if frozen.has_gpu and self.num_gpus > 0 and not alive:
                # every configured device already failed: degrade from
                # the start, exactly as the fresh path does
                missing = kernels_without_fallback(graph.nodes)
                if missing:
                    raise ExecutorError(
                        f"no GPUs survive and kernel task "
                        f"{missing[0].name!r} has no host fallback"
                    )
                topology.degraded = True
                self._m_degraded.inc()
                topology.event("degraded", at="start", alive=[])
            else:
                plan = self._plan_cache.get(frozen.fid)
                if plan is not None and plan.alive == alive:
                    self._m_replay_hits.inc()
                else:
                    # first submission, or the live-device set changed
                    # (which also invalidates a plan whose placement
                    # was replanned in place during recovery)
                    self._m_replay_misses.inc()
                    placement = self._placement.place(
                        graph.nodes, self.num_gpus
                    )
                    if frozen.has_gpu and len(alive) < self.num_gpus:
                        replan(
                            graph.nodes,
                            placement,
                            sorted(alive),
                            self._placement.cost_metric,
                        )
                    plan = _CompiledPlan(
                        placement, snapshot_assignment(graph.nodes), alive
                    )
                    self._plan_cache[frozen.fid] = plan
                # re-apply the assignment: device ordinals live on the
                # shared nodes, and a fresh run or a sibling's recovery
                # pass may have moved them since the plan was compiled
                apply_assignment(plan.pairs)
                topology.placement = plan.placement
        except Exception as exc:  # placement failure fails the run
            topology.fail(exc)
            self._finalize_topology(topology)
            return
        self._dispatch_pass(topology)

    def _dispatch_pass(self, topology: Topology) -> None:
        if topology.frozen is not None:
            self._m_plan_reuses.inc()
            if topology.fast:
                self._dispatch_pass_fast(topology)
                return
        graph = topology.graph
        topology.begin_pass()
        for node in graph.nodes:
            node.reset_join_counter()
        sources = [n for n in graph.nodes if n.is_source]
        for node in sources:
            self._schedule(topology, node)

    def _dispatch_pass_fast(self, rtop: ReplayTopology) -> None:
        """Seed one fast-path pass: reset the preallocated slot joins
        and enqueue the frozen source slots in chunks.  Chunking
        amortizes queue and notifier traffic across many small tasks;
        :meth:`_invoke_fast` runs chains inline and spills excess
        ready slots back as stealable chunks."""
        rtop.begin_pass()
        rtop.reset_joins()
        sources = rtop.frozen.source_slots
        gen = rtop.gen
        wid = getattr(self._tls, "wid", None)
        notify = self._notifier.notify_one
        if wid is not None:
            queue = self._queues[wid]
            for i in range(0, len(sources), _FAST_CHUNK):
                queue.push((rtop, sources[i : i + _FAST_CHUNK], gen))
                notify()
        else:
            shared = self._shared
            priority = rtop.priority
            for i in range(0, len(sources), _FAST_CHUNK):
                shared.push((rtop, sources[i : i + _FAST_CHUNK], gen), priority)
                notify()

    def _finalize_topology(self, topology: Topology) -> None:
        graph = topology.graph
        # release pooled pull buffers and degraded-mode shadows
        for node in graph.nodes:
            if node.buffer is not None:
                node.buffer.free()
                node.buffer = None
            node.pull_snapshot = None
            node.host_shadow = None
        for obs in self._observers:
            obs.on_topology_end(graph.name, len(graph.nodes))
        if topology.frozen is not None:
            self._m_replay_latency.observe(
                time.perf_counter() - topology.t_submit
            )
        self._cancel_topology_deadline(topology)
        topology.complete()
        self._release_admission(topology)
        # start the next queued topology of this graph, if any
        next_topology: Optional[Topology] = None
        with self._graph_lock:
            self._futures.pop(topology.future, None)
            q = self._graph_queues.get(id(graph))
            if q is not None:
                # identity-checked removal: a concurrent shed/cancel/
                # deadline may have reshaped the queue, so never pop a
                # sibling blindly
                if q and q[0] is topology:
                    q.popleft()
                elif topology in q:  # pragma: no cover - hardening
                    q.remove(topology)
                if q and not q[0].started:
                    next_topology = q[0]
                    next_topology.started = True
                elif not q:
                    del self._graph_queues[id(graph)]
        with self._topology_cv:
            self._num_topologies -= 1
            self._topology_cv.notify_all()
        if next_topology is not None:
            self._start_topology(next_topology)

    # ------------------------------------------------------------------
    # scheduling plumbing
    # ------------------------------------------------------------------
    def _schedule(
        self, topology: Topology, node: Node, gen: Optional[int] = None
    ) -> None:
        """Enqueue a ready node: local queue when on a worker thread
        (cache-friendly LIFO), shared queue otherwise (submitter or
        stream-callback threads).  The item carries *gen* — the
        generation the scheduling decision was made under (current when
        omitted); recovery bumps the topology generation so stale items
        are dropped.  Callers reacting to a task that ran under an
        older generation MUST pass that generation: stamping the
        current one would let the item survive a concurrent
        ``request_recovery`` bump while the recovery pass independently
        reschedules the same node — a double execution."""
        item = (topology, node, topology.gen if gen is None else gen)
        wid = getattr(self._tls, "wid", None)
        if wid is not None:
            self._queues[wid].push(item)
        else:
            self._shared.push(item, topology.priority)
        self._notifier.notify_one()

    def _next_item(self, wid: int, rng: random.Random) -> Optional[WorkItem]:
        item = self._queues[wid].pop()
        if item is not None:
            self._m_local.inc(wid)
            return item
        item = self._shared.steal()
        if item is not None:
            self._m_shared_pops.inc(wid)
            return item
        # steal from random victims; bounded rounds keep the thief
        # responsive to the sleep protocol
        n = self._num_workers
        if n > 1:
            for _ in range(2 * n):
                victim = rng.randrange(n)
                if victim == wid:
                    continue
                self._m_steal_try.inc(wid)
                item = self._queues[victim].steal()
                if item is not None:
                    self._m_steal_ok.inc(wid)
                    return item
        return None

    def _worker_loop(self, wid: int) -> None:
        self._tls.wid = wid
        rng = random.Random((self._seed << 16) ^ wid)
        while True:
            item = self._next_item(wid, rng)
            if item is not None:
                self._invoke(wid, *item)
                continue
            if self._done:
                return
            # two-phase commit sleep: announce, re-check, commit
            epoch = self._notifier.prepare_wait()
            item = self._next_item(wid, rng)
            if item is not None:
                self._notifier.cancel_wait()
                self._invoke(wid, *item)
                continue
            if self._done:
                self._notifier.cancel_wait()
                return
            self._m_sleeps.inc(wid)
            self._notifier.commit_wait(epoch, timeout=_SLEEP_TIMEOUT)
            self._m_wakeups.inc(wid)

    # ------------------------------------------------------------------
    # task invocation (visitor pattern over task types)
    # ------------------------------------------------------------------
    def _invoke(self, wid: int, topology: Topology, node: Node, gen: int = 0) -> None:
        if node.__class__ is tuple:
            # fast-path work item: a chunk of frozen slot indices
            self._invoke_fast(wid, topology, node, gen)  # type: ignore[arg-type]
            return
        if gen != topology.gen:
            # recovery invalidated this item and rescheduled the node
            return
        if not topology.enter():
            # a device failure awaits quiescence; recovery reschedules
            return
        if gen != topology.gen:
            # recovery slipped in between the gen check and enter()
            self._leave(topology)
            return
        if topology.failed:
            # fast-cancel: flush remaining nodes without running them
            self._m_flushed.inc(wid)
            self._finish_node(topology, node, gen)
            self._leave(topology)
            return
        self._m_tasks.inc(wid)
        for obs in self._observers:
            obs.on_task_begin(wid, node)
        timeout_s = node.timeout_s if node.timeout_s is not None else topology.timeout_s
        attempt = _Attempt(topology, node, wid, gen, timeout_s)
        try:
            if topology.degraded and node.type.is_gpu:
                self._invoke_degraded(attempt)
            elif node.type is TaskType.HOST:
                fn = node.callable
                if topology.bound is not None:
                    # frozen general path with run(..., bindings=...):
                    # the override lives on the submission, never on
                    # the shared (immutable) node
                    fn = topology.bound.get(node.nid, fn)
                assert fn is not None
                if topology.sanitizer is not None:
                    # attribute proxy accesses to this task for the
                    # duration of the call (docs/analysis.md)
                    fn = topology.sanitizer.wrap_host(node, fn)
                fn()
                self._attempt_finished(attempt, self._post_timeout(attempt))
            elif node.type is TaskType.PULL:
                self._arm_deadline(attempt)
                self._invoke_pull(attempt)
            elif node.type is TaskType.PUSH:
                self._arm_deadline(attempt)
                self._invoke_push(attempt)
            elif node.type is TaskType.KERNEL:
                self._arm_deadline(attempt)
                self._invoke_kernel(attempt)
            else:
                raise ExecutorError(f"cannot execute task of type {node.type}")
        except BaseException as exc:  # noqa: BLE001 - routed to policy
            self._attempt_finished(attempt, exc)

    def _invoke_fast(
        self, wid: int, rtop: ReplayTopology, slots: Tuple[int, ...], gen: int
    ) -> None:
        """Slot-based replay fast path (host-only frozen graphs).

        Processes a chunk of ready slots with *inline continuation*:
        when a completed slot readies exactly one successor (the chain
        case) it runs in the same loop iteration with no queue or
        notifier round trip; wider fan-out keeps up to one chunk local
        and spills the rest as stealable chunk items.  Per task this
        costs one lock acquisition (successor release + pass
        accounting under ``replay_lock``), the callable, and a lane
        counter store — no per-node ``_Attempt`` allocation, no
        enter/leave traffic (host-only graphs cannot see device
        failures), no per-task dict churn.  Cancellation and deadlines
        still apply: a failed/cancelled topology flushes remaining
        slots unrun, exactly like the general path.
        """
        if gen != rtop.gen:  # pragma: no cover - host-only: never bumps
            return
        frozen = rtop.frozen
        nodes = frozen.nodes
        callables = rtop.callables
        succ_slots = frozen.succ_slots
        joins = rtop.joins
        lock = rtop.replay_lock
        observers = self._observers
        queue = self._queues[wid]
        notify = self._notifier.notify_one
        m_tasks = self._m_tasks
        m_flushed = self._m_flushed
        todo = list(slots)
        while todo:
            s = todo.pop()
            if rtop.failed:
                # fast-cancel: count the slot without running it
                m_flushed.inc(wid)
            else:
                m_tasks.inc(wid)
                if observers:
                    node = nodes[s]
                    for obs in observers:
                        obs.on_task_begin(wid, node)
                    try:
                        callables[s]()
                    except BaseException as exc:  # noqa: BLE001
                        self._fast_task_failed(rtop, s, exc)
                    for obs in observers:
                        obs.on_task_end(wid, node)
                else:
                    try:
                        callables[s]()
                    except BaseException as exc:  # noqa: BLE001
                        self._fast_task_failed(rtop, s, exc)
            ready: Optional[List[int]] = None
            with lock:
                for t in succ_slots[s]:
                    nt = joins[t] - 1
                    joins[t] = nt
                    if nt == 0:
                        if ready is None:
                            ready = [t]
                        else:
                            ready.append(t)
                rtop.pending -= 1
                done = rtop.pending == 0
            if ready is not None:
                todo.extend(ready)
                extra = len(todo) - _FAST_CHUNK
                if extra > 0:
                    # keep one chunk for inline continuation; spill the
                    # rest so idle workers can steal the fan-out
                    spill = todo[:extra]
                    del todo[:extra]
                    for i in range(0, extra, _FAST_CHUNK):
                        queue.push(
                            (rtop, tuple(spill[i : i + _FAST_CHUNK]), gen)
                        )
                        notify()
            if done:
                if rtop.pass_completed():
                    self._finalize_topology(rtop)
                else:
                    self._dispatch_pass(rtop)
                return

    def _fast_task_failed(
        self, rtop: ReplayTopology, slot: int, exc: BaseException
    ) -> None:
        """Record a fast-path task failure (rare path, kept cold).

        Fast-path eligibility guarantees no retry policy is in play, so
        the raw exception fails the topology — the same terminal
        behavior the general path has without resilience."""
        node = rtop.frozen.nodes[slot]
        rtop.record_attempt(node.nid, exc)
        rtop.event(
            "task_failed",
            task=node.name,
            nid=node.nid,
            attempts=1,
            error=type(exc).__name__,
        )
        rtop.fail(exc)

    def _invoke_degraded(self, attempt: _Attempt) -> None:
        """Run a GPU task on the host (zero survivors; docs/resilience.md)."""
        node = attempt.node
        attempt.fallback = True
        if node.type is TaskType.PULL:
            run_degraded_pull(node, node.nid in attempt.topology.replayed)
        elif node.type is TaskType.KERNEL:
            run_degraded_kernel(node)
            self._m_fallbacks.inc()
        else:
            run_degraded_push(node)
        self._attempt_finished(attempt, self._post_timeout(attempt))

    def _post_timeout(self, attempt: _Attempt) -> Optional[BaseException]:
        """Post-hoc deadline check for synchronous (host/degraded)
        tasks: the callable cannot be interrupted, so an overrun is
        detected when it returns."""
        if (
            attempt.timeout_s is not None
            and time.perf_counter() - attempt.t0 > attempt.timeout_s
        ):
            return TaskTimeoutError(attempt.node.name, attempt.timeout_s)
        return None

    def _arm_deadline(self, attempt: _Attempt) -> None:
        """Start the watchdog for an asynchronous GPU attempt."""
        if attempt.timeout_s is None:
            return
        err = TaskTimeoutError(attempt.node.name, attempt.timeout_s)
        attempt.timer_entry = self._timer.schedule(
            attempt.timeout_s, lambda: self._attempt_finished(attempt, err)
        )

    def _attempt_finished(
        self, attempt: _Attempt, err: Optional[BaseException]
    ) -> None:
        """Single funnel for attempt outcomes (success, sync raise,
        stream-callback error, watchdog fire); first caller wins."""
        if not attempt.resolve():
            return
        if attempt.timer_entry is not None:
            _TimerThread.cancel(attempt.timer_entry)
        if err is None:
            self._task_done(
                attempt.wid,
                attempt.topology,
                attempt.node,
                stream=attempt.stream,
                fallback=attempt.fallback,
                gen=attempt.gen,
            )
            if self._leave(attempt.topology):
                self._recover(attempt.topology)
        else:
            self._handle_failure(attempt, err)

    # ------------------------------------------------------------------
    # failure handling: retry, timeout, quarantine, recovery
    # ------------------------------------------------------------------
    def _handle_failure(self, attempt: _Attempt, err: BaseException) -> None:
        topology, node, wid = attempt.topology, attempt.node, attempt.wid

        if isinstance(err, TaskTimeoutError):
            self._m_timeouts.inc()
            if attempt.stream is not None:
                # the op may still be wedged in the dispatcher: retire
                # this (worker, device) stream so retries get a fresh one
                self._quarantine_stream(attempt.stream)
                topology.event(
                    "stream_quarantined",
                    task=node.name,
                    stream=attempt.stream.sid,
                )

        if isinstance(err, DeviceFailedError):
            topology.record_attempt(node.nid, err)
            self._quarantine_device(err.ordinal)
            topology.event("device_failed", device=err.ordinal, task=node.name)
            topology.request_recovery(err.ordinal)
            if self._leave(topology):
                self._recover(topology)
            return

        history = topology.record_attempt(node.nid, err)
        n_attempt = len(history)
        policy = (
            node.retry_policy
            if node.retry_policy is not None
            else topology.retry_policy
        )
        if (
            policy is not None
            and not topology.failed
            and n_attempt < policy.max_attempts
            and policy.retryable(err)
        ):
            self._m_retries.inc()
            topology.event(
                "retry",
                task=node.name,
                nid=node.nid,
                attempt=n_attempt,
                error=type(err).__name__,
            )
            for obs in self._observers:
                obs.on_task_retry(wid, node, n_attempt, err)
            gen = attempt.gen
            dinfo = policy.delay_info(n_attempt, key=node.nid)
            delay = dinfo.seconds
            topology.record_retry_delay(node.nid, dinfo)
            need_recovery = self._leave(topology)
            if need_recovery:
                # a device failure arrived mid-flight; recovery will
                # reschedule this node (it is not done)
                self._recover(topology)
            elif gen != topology.gen:
                pass  # superseded by a recovery pass; ditto
            elif delay <= 0:
                self._schedule(topology, node, gen)
            else:
                self._timer.schedule(
                    delay, lambda: self._retry_fire(topology, node, gen)
                )
            return

        # terminal: wrap in TaskFailedError when resilience was in play,
        # keep the raw exception otherwise (backward compatible)
        if policy is not None or isinstance(err, TaskTimeoutError):
            wrapped: BaseException = TaskFailedError(
                node.name, node.nid, history, topology.attempt_details(node.nid)
            )
            wrapped.__cause__ = err
            if policy is not None:
                self._m_exhausted.inc()
        else:
            wrapped = err
        topology.event(
            "task_failed",
            task=node.name,
            nid=node.nid,
            attempts=n_attempt,
            error=type(err).__name__,
        )
        topology.fail(wrapped)
        # a timed-out op never completed on its stream: committing its
        # ops_executed as a stream_seq would collide with a real op
        stream = None if isinstance(err, TaskTimeoutError) else attempt.stream
        self._task_done(wid, topology, node, stream=stream, gen=attempt.gen)
        if self._leave(topology):
            self._recover(topology)

    def _retry_fire(self, topology: Topology, node: Node, gen: int) -> None:
        """Delayed-retry timer target; drops if recovery superseded it."""
        if topology.gen != gen or topology.failed:
            if topology.failed and topology.gen == gen:
                # the topology failed while we waited: flush the node
                # through the normal cascade so the pass can finish
                self._schedule(topology, node, gen)
            return
        self._schedule(topology, node, gen)

    def _leave(self, topology: Topology) -> bool:
        return topology.leave()

    def _quarantine_stream(self, stream: Stream) -> None:
        """Retire one stream from the per-(worker, device) map; the
        stream object itself is torn down with its device.  Abandoning
        it first guarantees ops still queued behind the stuck one are
        skipped rather than executed when the stall releases — a late
        payload re-running after its task was retried elsewhere would
        break exact-once."""
        stream.abandon()
        with self._stream_lock:
            for streams in self._streams:
                for ordinal, s in list(streams.items()):
                    if s is stream:
                        del streams[ordinal]
        self._m_quarantined.inc()

    def _quarantine_device(self, ordinal: int) -> None:
        """Mark a device dead executor-wide (idempotent)."""
        with self._quarantine_lock:
            if ordinal not in self._alive_gpus:
                return
            self._alive_gpus.discard(ordinal)
        self._m_device_failures.inc()
        device = self._gpu.device(ordinal)
        device.fail()
        with self._stream_lock:
            for streams in self._streams:
                streams.pop(ordinal, None)

    def _recover(self, topology: Topology) -> None:
        """Recovery pass, run at quiescence by whichever thread drained
        the in-flight set last (worker, dispatcher, or timer thread).

        Retracts committed GPU executions whose device state was lost,
        re-places stranded groups onto survivors (or degrades to host
        fallbacks), rebuilds join counters over the remaining nodes,
        and re-dispatches the ready ones under a fresh generation.
        """
        while True:
            dead = topology.take_recovery()
            nodes = topology.graph.nodes
            alive = self.alive_gpus
            if not topology.failed:
                # retract committed pull/kernel executions whose device
                # copies died; completed pushes keep their host-side
                # effect and are not re-run
                for n in nodes:
                    if (
                        n.nid in topology.done_nodes
                        and n.type in (TaskType.PULL, TaskType.KERNEL)
                        and (n.device in dead or not alive)
                    ):
                        topology.replayed.add(n.nid)
                        topology.done_nodes.discard(n.nid)
                        self._m_replayed.inc()
                        for obs in self._observers:
                            obs.on_task_replayed(n)
            # free buffers stranded on dead devices
            for n in nodes:
                if n.buffer is not None and not n.buffer.device.alive:
                    n.buffer.free()
                    n.buffer = None
            if not topology.failed:
                if alive:
                    if topology.placement is not None:
                        replan(
                            nodes,
                            topology.placement,
                            alive,
                            self._placement.cost_metric,
                        )
                    topology.event(
                        "replanned", dead=sorted(dead), alive=alive
                    )
                else:
                    missing = kernels_without_fallback(nodes)
                    if missing:
                        first = missing[0]
                        failure = TaskFailedError(
                            first.name,
                            first.nid,
                            [DeviceFailedError(d) for d in sorted(dead)],
                        )
                        topology.event(
                            "degradation_impossible", task=first.name
                        )
                        topology.fail(failure)
                    else:
                        topology.degraded = True
                        self._m_degraded.inc()
                        topology.event("degraded", at="recovery", alive=[])
            # rebuild scheduling state over the not-yet-done nodes; the
            # flush cascade handles them if the topology failed above
            done = set(topology.done_nodes)
            remaining = [n for n in nodes if n.nid not in done]
            for n in remaining:
                n.join_counter = sum(
                    1 for d in n.dependents if d.nid not in done
                )
            topology.set_pending(len(remaining))
            ready = [n for n in remaining if n.join_counter == 0]
            if topology.finish_recovery():
                # another device died while we recovered: go again
                continue
            # stamp every ready node with one generation snapshot: a
            # failure arriving mid-loop bumps the topology generation,
            # and later items must NOT survive into the next recovery
            # pass's own rescheduling
            gen = topology.gen
            for n in ready:
                self._schedule(topology, n, gen)
            return

    def _task_done(
        self,
        wid: int,
        topology: Topology,
        node: Node,
        stream: Optional[Stream] = None,
        fallback: bool = False,
        gen: Optional[int] = None,
    ) -> None:
        # for GPU tasks this runs on the stream dispatcher thread, so
        # ops_executed is stable and identifies the completing op
        seq = stream.ops_executed if stream is not None else None
        replayed = node.nid in topology.replayed
        topology.mark_done(node.nid)
        for obs in self._observers:
            obs.on_task_end(
                wid,
                node,
                stream=stream,
                stream_seq=seq,
                fallback=fallback,
                replayed=replayed,
            )
        self._finish_node(topology, node, gen)

    def _finish_node(
        self, topology: Topology, node: Node, gen: Optional[int] = None
    ) -> None:
        for succ in node.successors:
            if succ.release_dependency():
                self._schedule(topology, succ, gen)
        if topology.node_finished():
            if topology.pass_completed():
                self._finalize_topology(topology)
            else:
                self._dispatch_pass(topology)

    # -- GPU task visitors ------------------------------------------
    def _stream_for(self, wid: int, device_ordinal: int) -> Stream:
        streams = self._streams[wid]
        s = streams.get(device_ordinal)
        if s is None:
            with self._stream_lock:
                s = streams.get(device_ordinal)
                if s is None:
                    s = self._gpu.device(device_ordinal).create_stream(f"w{wid}")
                    streams[device_ordinal] = s
        return s

    def _attempt_callback(self, attempt: _Attempt) -> Callable:
        def done(err: Optional[BaseException]) -> None:
            self._attempt_finished(attempt, err)

        return done

    def _snapshotting(self) -> bool:
        """Capture pull snapshots only when device failure is possible
        (a fault profile is armed or a device already died) — replay
        needs the H2D-time bytes, which a completed push may since have
        overwritten on the host."""
        if len(self._alive_gpus) < self.num_gpus:
            return True
        return any(d.fault_state is not None for d in self._gpu.devices)

    def _invoke_pull(self, attempt: _Attempt) -> None:
        topology, node, wid = attempt.topology, attempt.node, attempt.wid
        assert node.span is not None and node.device is not None
        device = self._gpu.device(node.device)
        if not device.alive:
            raise DeviceFailedError(node.device)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, node.device)
            attempt.stream = stream
            # a replayed pull re-reads its snapshot, not the live span:
            # a completed push may have overwritten the host array
            if node.nid in topology.replayed and node.pull_snapshot is not None:
                host = node.pull_snapshot
            else:
                host = node.span.host_array()
            need = max(int(host.nbytes), 1)
            buf = node.buffer
            if buf is not None and (buf.device is not device or buf.nbytes < need):
                buf.free()
                buf = None
            if buf is None:
                buf = device.heap.allocate(need, dtype=host.dtype)
                node.buffer = buf
            else:
                buf.dtype = host.dtype
            capture = self._snapshotting()
            inner = self._attempt_callback(attempt)

            def done(err: Optional[BaseException]) -> None:
                if err is None and capture:
                    node.pull_snapshot = np.array(host, copy=True)
                inner(err)

            self._gpu.memcpy_h2d_async(buf, host, stream, callback=done)

    def _invoke_push(self, attempt: _Attempt) -> None:
        topology, node, wid = attempt.topology, attempt.node, attempt.wid
        assert node.span is not None and node.source is not None
        src = node.source.buffer
        if src is None:
            raise KernelError(
                f"push task {node.name!r} ran before its pull task "
                f"{node.source.name!r}; add the missing dependency"
            )
        device = self._gpu.device(
            node.device if node.device is not None else src.device.ordinal
        )
        if not device.alive:
            raise DeviceFailedError(device.ordinal)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, device.ordinal)
            attempt.stream = stream
            staging = np.empty(src.size, dtype=src.dtype)
            span = node.span
            inner = self._attempt_callback(attempt)

            def done(err: Optional[BaseException]) -> None:
                if err is None:
                    try:
                        span.write_back(staging)
                    except BaseException as exc:  # noqa: BLE001
                        err = exc
                inner(err)

            self._gpu.memcpy_d2h_async(staging, src, stream, callback=done)

    def _invoke_kernel(self, attempt: _Attempt) -> None:
        node, wid = attempt.node, attempt.wid
        assert node.kernel_fn is not None and node.device is not None
        device = self._gpu.device(node.device)
        if not device.alive:
            raise DeviceFailedError(node.device)
        converted: List[Any] = []
        for arg in node.kernel_args:
            if isinstance(arg, PullTask):
                buf = arg.node.buffer
                if buf is None:
                    raise KernelError(
                        f"kernel {node.name!r} ran before pull task "
                        f"{arg.node.name!r}; add the missing dependency"
                    )
                converted.append(buf)
            else:
                converted.append(arg)
        kernel_fn = node.kernel_fn
        sanitizer = attempt.topology.sanitizer
        if sanitizer is not None:
            # the shim substitutes recording views for the span
            # arguments after buffer-to-view decay (docs/analysis.md)
            kernel_fn = sanitizer.wrap_kernel(node)
        with ScopedDeviceContext(device):
            stream = self._stream_for(wid, node.device)
            attempt.stream = stream
            launch_async(
                stream,
                node.launch,
                kernel_fn,
                *converted,
                callback=self._attempt_callback(attempt),
            )
