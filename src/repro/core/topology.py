"""Topologies: per-submission execution state.

"When a graph is submitted to an executor, a special data structure
called *topology* is created to marshal execution parameters and
runtime metadata.  Each heteroflow object has a list of topologies to
track individual execution status" (paper §III-C).

A topology owns one promise/future pair for caller signalling, the
repeat predicate implementing ``run``/``run_n``/``run_until``, the
placement result, and the pass-completion counter.

Since the resilience layer (docs/resilience.md) it also tracks:

- the normalized :class:`~repro.resilience.ResiliencePolicy` for the
  submission (per-task overrides live on the nodes);
- per-node attempt histories (:meth:`record_attempt`) feeding
  :class:`~repro.errors.TaskFailedError` and the retry loop;
- a *generation* counter plus an *active* in-flight counter enabling
  quiescence-based device-failure recovery: when a device dies, the
  executor requests recovery, workers drop stale-generation items, and
  the last in-flight task to leave triggers the re-placement/replay
  pass;
- structured failure events surfaced in the RunReport.

Since the overload-protection layer (docs/runtime.md, "Submission
lifecycle") it additionally carries the submission's *priority* (orders
the graph FIFO and the cross-graph overflow queue), its *deadline*
(armed on the executor's timer wheel; firing cancels the submission
with a structured ``deadline_exceeded`` event), and the admission
ledger bookkeeping (predicted footprint, exactly-once release).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, InvalidStateError
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.resilience.policy import normalize_policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.heteroflow import Heteroflow
    from repro.core.placement import PlacementResult
    from repro.resilience.policy import ResiliencePolicy, RetryPolicy


class Topology:
    """Runtime state for one ``Executor.run*`` submission."""

    def __init__(
        self,
        graph: "Heteroflow",
        repeats: Optional[int] = 1,
        predicate: Optional[Callable[[], bool]] = None,
        policy: Optional[object] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> None:
        """*repeats*: fixed pass count (``run``/``run_n``), or ``None``
        with *predicate*: run passes until ``predicate()`` is True
        (``run_until``, checked after each pass — do/while semantics).
        *policy*: a :class:`~repro.resilience.RetryPolicy` or
        :class:`~repro.resilience.ResiliencePolicy` applied to every
        task of the submission (tasks override individually).
        """
        self.graph = graph
        self.repeats = repeats
        self.predicate = predicate
        self.future: Future = Future()
        self.placement: Optional["PlacementResult"] = None
        self.passes_done = 0
        self.pending = 0
        self.error: Optional[BaseException] = None
        self._lock = threading.Lock()
        # -- resilience state -------------------------------------------
        norm: "ResiliencePolicy" = normalize_policy(policy)
        self.retry_policy: Optional["RetryPolicy"] = norm.retry
        self.timeout_s: Optional[float] = norm.timeout
        #: True once the executor began (or promoted) this topology;
        #: queued topologies cancel immediately (Executor.cancel)
        self.started = False
        # -- service state (docs/runtime.md, submission lifecycle) ------
        #: higher runs first: orders the graph FIFO and the cross-graph
        #: overflow queue; the shed policy evicts lower priorities
        self.priority = priority
        #: seconds from submission until the deadline cancels the run
        self.deadline_s = deadline_s
        #: global submission order (executor-stamped); shed victim
        #: tie-break within a priority
        self.submit_seq = 0
        #: live timer-wheel entry for the armed deadline (nulled on fire)
        self.deadline_entry: Optional[list] = None
        #: predicted device-memory footprint charged to the admission
        #: ledger (hflint HF020 static model; 0 when unlimited)
        self.footprint_bytes = 0
        #: True while this topology holds admission capacity
        self.admitted = False
        self._admission_released = False
        #: True when running GPU tasks on host shadows (zero survivors)
        self.degraded = False
        #: scheduling generation; recovery bumps it so stale queue
        #: items are dropped by workers
        self.gen = 0
        #: tasks currently inside _invoke (in-flight)
        self.active = 0
        #: per-node attempt error history (this pass)
        self.attempts: Dict[int, List[BaseException]] = {}
        #: nids whose task committed (finished) this pass
        self.done_nodes: Set[int] = set()
        #: nids whose committed execution was invalidated by a device
        #: failure and will run again (trace record retracted)
        self.replayed: Set[int] = set()
        #: structured failure/recovery events (RunReport ``events``)
        self.events: List[dict] = []
        #: device ordinals whose failure awaits recovery
        self._recovery_devices: Set[int] = set()
        self._recovering = False

    # -- failure handling ----------------------------------------------
    def fail(self, error: BaseException) -> None:
        """Record the first task error; later errors are dropped."""
        with self._lock:
            if self.error is None:
                self.error = error

    def cancel(self) -> None:
        """Request cancellation: remaining tasks are flushed unrun and
        the future resolves with :class:`concurrent.futures.CancelledError`."""
        from concurrent.futures import CancelledError

        self.fail(CancelledError())

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def cancelled(self) -> bool:
        from concurrent.futures import CancelledError

        return isinstance(self.error, CancelledError)

    # -- pass accounting -------------------------------------------------
    def begin_pass(self) -> None:
        with self._lock:
            self.pending = len(self.graph.nodes)
            self.attempts = {}
            self.done_nodes = set()
            self.replayed = set()

    def node_finished(self) -> bool:
        """Count one node done; True when the pass just completed."""
        with self._lock:
            self.pending -= 1
            return self.pending == 0

    def set_pending(self, n: int) -> None:
        """Reset the remaining-node count (recovery re-baselines it)."""
        with self._lock:
            self.pending = n

    def pass_completed(self) -> bool:
        """Record a finished pass; True when the topology should stop."""
        with self._lock:
            self.passes_done += 1
            if self.error is not None:
                return True
        if self.repeats is not None:
            return self.passes_done >= self.repeats
        assert self.predicate is not None
        return bool(self.predicate())

    def complete(self) -> None:
        """Resolve the future (exception if any task failed).

        Tolerates an already-resolved future: a drain timeout or a
        ``wait=False`` shutdown may have force-resolved it while the
        flush cascade was still finishing (docs/runtime.md).
        """
        try:
            if self.error is not None:
                self.future.set_exception(self.error)
            else:
                self.future.set_result(self.passes_done)
        except InvalidStateError:
            pass

    def take_admission_release(self) -> bool:
        """Claim the one-time admission-ledger release; True for the
        single caller that must return this topology's capacity."""
        with self._lock:
            if not self.admitted or self._admission_released:
                return False
            self._admission_released = True
            return True

    # -- resilience accounting (docs/resilience.md) --------------------
    def record_attempt(self, nid: int, error: BaseException) -> List[BaseException]:
        """Append one failed attempt for node *nid*; returns the full
        history (oldest first)."""
        with self._lock:
            history = self.attempts.setdefault(nid, [])
            history.append(error)
            return list(history)

    def mark_done(self, nid: int) -> None:
        with self._lock:
            self.done_nodes.add(nid)

    def event(self, kind: str, **fields: object) -> None:
        """Record a structured failure/recovery event (JSON-ready)."""
        ev = {"kind": kind}
        ev.update(fields)
        with self._lock:
            self.events.append(ev)

    # -- quiescence-based recovery -------------------------------------
    def enter(self) -> bool:
        """A worker is about to run a task; False means recovery is
        pending and the caller must drop the item (recovery will
        reschedule whatever still needs to run)."""
        with self._lock:
            if self._recovery_devices and not self._recovering:
                return False
            self.active += 1
            return True

    def leave(self) -> bool:
        """A task left the in-flight set; True when the caller must run
        the recovery pass (it observed quiescence with recovery
        pending)."""
        with self._lock:
            self.active -= 1
            return (
                self.active == 0
                and bool(self._recovery_devices)
                and not self._recovering
            )

    def request_recovery(self, ordinal: int) -> bool:
        """Note that device *ordinal* failed; True when the caller
        should run recovery right now (nothing is in flight)."""
        with self._lock:
            self.gen += 1  # invalidate queued items immediately
            self._recovery_devices.add(ordinal)
            return self.active == 0 and not self._recovering

    def take_recovery(self) -> Set[int]:
        """Claim the pending recovery set (called by the recovery pass)."""
        with self._lock:
            self._recovering = True
            devices, self._recovery_devices = self._recovery_devices, set()
            return devices

    def finish_recovery(self) -> bool:
        """Mark recovery done; True when new failures arrived meanwhile
        (the caller should run another pass)."""
        with self._lock:
            self._recovering = False
            return bool(self._recovery_devices) and self.active == 0

    @property
    def recovery_pending(self) -> bool:
        with self._lock:
            return bool(self._recovery_devices) or self._recovering
