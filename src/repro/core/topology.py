"""Topologies: per-submission execution state.

"When a graph is submitted to an executor, a special data structure
called *topology* is created to marshal execution parameters and
runtime metadata.  Each heteroflow object has a list of topologies to
track individual execution status" (paper §III-C).

A topology owns one promise/future pair for caller signalling, the
repeat predicate implementing ``run``/``run_n``/``run_until``, the
placement result, and the pass-completion counter.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.heteroflow import Heteroflow
    from repro.core.placement import PlacementResult


class Topology:
    """Runtime state for one ``Executor.run*`` submission."""

    def __init__(
        self,
        graph: "Heteroflow",
        repeats: Optional[int] = 1,
        predicate: Optional[Callable[[], bool]] = None,
    ) -> None:
        """*repeats*: fixed pass count (``run``/``run_n``), or ``None``
        with *predicate*: run passes until ``predicate()`` is True
        (``run_until``, checked after each pass — do/while semantics).
        """
        self.graph = graph
        self.repeats = repeats
        self.predicate = predicate
        self.future: Future = Future()
        self.placement: Optional["PlacementResult"] = None
        self.passes_done = 0
        self.pending = 0
        self.error: Optional[BaseException] = None
        self._lock = threading.Lock()

    # -- failure handling ----------------------------------------------
    def fail(self, error: BaseException) -> None:
        """Record the first task error; later errors are dropped."""
        with self._lock:
            if self.error is None:
                self.error = error

    def cancel(self) -> None:
        """Request cancellation: remaining tasks are flushed unrun and
        the future resolves with :class:`concurrent.futures.CancelledError`."""
        from concurrent.futures import CancelledError

        self.fail(CancelledError())

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def cancelled(self) -> bool:
        from concurrent.futures import CancelledError

        return isinstance(self.error, CancelledError)

    # -- pass accounting -------------------------------------------------
    def begin_pass(self) -> None:
        with self._lock:
            self.pending = len(self.graph.nodes)

    def node_finished(self) -> bool:
        """Count one node done; True when the pass just completed."""
        with self._lock:
            self.pending -= 1
            return self.pending == 0

    def pass_completed(self) -> bool:
        """Record a finished pass; True when the topology should stop."""
        with self._lock:
            self.passes_done += 1
            if self.error is not None:
                return True
        if self.repeats is not None:
            return self.passes_done >= self.repeats
        assert self.predicate is not None
        return bool(self.predicate())

    def complete(self) -> None:
        """Resolve the future (exception if any task failed)."""
        if self.error is not None:
            self.future.set_exception(self.error)
        else:
            self.future.set_result(self.passes_done)
