"""Topologies: per-submission execution state.

"When a graph is submitted to an executor, a special data structure
called *topology* is created to marshal execution parameters and
runtime metadata.  Each heteroflow object has a list of topologies to
track individual execution status" (paper §III-C).

A topology owns one promise/future pair for caller signalling, the
repeat predicate implementing ``run``/``run_n``/``run_until``, the
placement result, and the pass-completion counter.

Since the resilience layer (docs/resilience.md) it also tracks:

- the normalized :class:`~repro.resilience.ResiliencePolicy` for the
  submission (per-task overrides live on the nodes);
- per-node attempt histories (:meth:`record_attempt`) feeding
  :class:`~repro.errors.TaskFailedError` and the retry loop;
- a *generation* counter plus an *active* in-flight counter enabling
  quiescence-based device-failure recovery: when a device dies, the
  executor requests recovery, workers drop stale-generation items, and
  the last in-flight task to leave triggers the re-placement/replay
  pass;
- structured failure events surfaced in the RunReport.

Since the overload-protection layer (docs/runtime.md, "Submission
lifecycle") it additionally carries the submission's *priority* (orders
the graph FIFO and the cross-graph overflow queue), its *deadline*
(armed on the executor's timer wheel; firing cancels the submission
with a structured ``deadline_exceeded`` event), and the admission
ledger bookkeeping (predicted footprint, exactly-once release).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, InvalidStateError
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.resilience.policy import normalize_policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.heteroflow import Heteroflow
    from repro.core.placement import PlacementResult
    from repro.resilience.policy import ResiliencePolicy, RetryPolicy


class Topology:
    """Runtime state for one ``Executor.run*`` submission."""

    def __init__(
        self,
        graph: "Heteroflow",
        repeats: Optional[int] = 1,
        predicate: Optional[Callable[[], bool]] = None,
        policy: Optional[object] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> None:
        """*repeats*: fixed pass count (``run``/``run_n``), or ``None``
        with *predicate*: run passes until ``predicate()`` is True
        (``run_until``, checked after each pass — do/while semantics).
        *policy*: a :class:`~repro.resilience.RetryPolicy` or
        :class:`~repro.resilience.ResiliencePolicy` applied to every
        task of the submission (tasks override individually).
        """
        self.graph = graph
        self.repeats = repeats
        self.predicate = predicate
        self.future: Future = Future()
        self.placement: Optional["PlacementResult"] = None
        self.passes_done = 0
        self.pending = 0
        self.error: Optional[BaseException] = None
        self._lock = threading.Lock()
        # -- resilience state -------------------------------------------
        norm: "ResiliencePolicy" = normalize_policy(policy)
        self.retry_policy: Optional["RetryPolicy"] = norm.retry
        self.timeout_s: Optional[float] = norm.timeout
        #: True once the executor began (or promoted) this topology;
        #: queued topologies cancel immediately (Executor.cancel)
        self.started = False
        # -- service state (docs/runtime.md, submission lifecycle) ------
        #: higher runs first: orders the graph FIFO and the cross-graph
        #: overflow queue; the shed policy evicts lower priorities
        self.priority = priority
        #: seconds from submission until the deadline cancels the run
        self.deadline_s = deadline_s
        #: global submission order (executor-stamped); shed victim
        #: tie-break within a priority
        self.submit_seq = 0
        #: live timer-wheel entry for the armed deadline (nulled on fire)
        self.deadline_entry: Optional[list] = None
        #: predicted device-memory footprint charged to the admission
        #: ledger (hflint HF020 static model; 0 when unlimited)
        self.footprint_bytes = 0
        #: True while this topology holds admission capacity
        self.admitted = False
        self._admission_released = False
        #: True when running GPU tasks on host shadows (zero survivors)
        self.degraded = False
        #: scheduling generation; recovery bumps it so stale queue
        #: items are dropped by workers
        self.gen = 0
        #: tasks currently inside _invoke (in-flight)
        self.active = 0
        #: per-node attempt error history (this pass)
        self.attempts: Dict[int, List[BaseException]] = {}
        #: per-node structured attempt records: error class plus, for
        #: retried attempts, backoff delay / saturation (docs/resilience.md)
        self.attempt_log: Dict[int, List[dict]] = {}
        #: nids whose task committed (finished) this pass
        self.done_nodes: Set[int] = set()
        #: nids whose committed execution was invalidated by a device
        #: failure and will run again (trace record retracted)
        self.replayed: Set[int] = set()
        #: structured failure/recovery events (RunReport ``events``)
        self.events: List[dict] = []
        #: device ordinals whose failure awaits recovery
        self._recovery_devices: Set[int] = set()
        self._recovering = False
        # -- freeze-and-replay (docs/runtime.md, "Freeze and replay") --
        #: the FrozenTopology behind this submission (None = fresh run)
        self.frozen: Optional["FrozenTopology"] = None
        #: True when the slot-based replay fast path applies
        self.fast = False
        #: per-submission host-callable overrides, nid-keyed (general
        #: path); None when no bindings were given
        self.bound: Optional[Dict[int, Callable]] = None
        #: submission timestamp for the replay latency histogram
        self.t_submit = 0.0
        #: attached :class:`repro.analysis.sanitize.SanitizerSession`
        #: for ``run(..., sanitize=True)`` submissions; None otherwise
        self.sanitizer: Optional[object] = None

    # -- failure handling ----------------------------------------------
    def fail(self, error: BaseException) -> None:
        """Record the first task error; later errors are dropped."""
        with self._lock:
            if self.error is None:
                self.error = error

    def cancel(self) -> None:
        """Request cancellation: remaining tasks are flushed unrun and
        the future resolves with :class:`concurrent.futures.CancelledError`."""
        from concurrent.futures import CancelledError

        self.fail(CancelledError())

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def cancelled(self) -> bool:
        from concurrent.futures import CancelledError

        return isinstance(self.error, CancelledError)

    # -- pass accounting -------------------------------------------------
    def begin_pass(self) -> None:
        with self._lock:
            self.pending = len(self.graph.nodes)
            self.attempts = {}
            self.attempt_log = {}
            self.done_nodes = set()
            self.replayed = set()

    def node_finished(self) -> bool:
        """Count one node done; True when the pass just completed."""
        with self._lock:
            self.pending -= 1
            return self.pending == 0

    def set_pending(self, n: int) -> None:
        """Reset the remaining-node count (recovery re-baselines it)."""
        with self._lock:
            self.pending = n

    def pass_completed(self) -> bool:
        """Record a finished pass; True when the topology should stop."""
        with self._lock:
            self.passes_done += 1
            if self.error is not None:
                return True
        if self.repeats is not None:
            return self.passes_done >= self.repeats
        assert self.predicate is not None
        return bool(self.predicate())

    def complete(self) -> None:
        """Resolve the future (exception if any task failed).

        Tolerates an already-resolved future: a drain timeout or a
        ``wait=False`` shutdown may have force-resolved it while the
        flush cascade was still finishing (docs/runtime.md).
        """
        try:
            if self.error is not None:
                self.future.set_exception(self.error)
            else:
                self.future.set_result(self.passes_done)
        except InvalidStateError:
            pass

    def take_admission_release(self) -> bool:
        """Claim the one-time admission-ledger release; True for the
        single caller that must return this topology's capacity."""
        with self._lock:
            if not self.admitted or self._admission_released:
                return False
            self._admission_released = True
            return True

    # -- resilience accounting (docs/resilience.md) --------------------
    def record_attempt(self, nid: int, error: BaseException) -> List[BaseException]:
        """Append one failed attempt for node *nid*; returns the full
        history (oldest first)."""
        with self._lock:
            history = self.attempts.setdefault(nid, [])
            history.append(error)
            log = self.attempt_log.setdefault(nid, [])
            log.append({"error": type(error).__name__})
            return list(history)

    def record_retry_delay(self, nid: int, info) -> None:
        """Attach the computed backoff (:class:`repro.resilience.RetryDelay`)
        to node *nid*'s most recent failed attempt, so the structured
        history in :class:`repro.errors.TaskFailedError` shows the
        delay slept and whether the exponential had saturated at the
        policy's ``max_delay`` cap."""
        with self._lock:
            log = self.attempt_log.get(nid)
            if log:
                log[-1].update(info.as_dict())

    def attempt_details(self, nid: int) -> List[dict]:
        """Structured per-attempt history for node *nid* (oldest
        first): error class plus retry-delay/saturation fields."""
        with self._lock:
            return [dict(e) for e in self.attempt_log.get(nid, ())]

    def mark_done(self, nid: int) -> None:
        with self._lock:
            self.done_nodes.add(nid)

    def event(self, kind: str, **fields: object) -> None:
        """Record a structured failure/recovery event (JSON-ready)."""
        ev = {"kind": kind}
        ev.update(fields)
        with self._lock:
            self.events.append(ev)

    # -- quiescence-based recovery -------------------------------------
    def enter(self) -> bool:
        """A worker is about to run a task; False means recovery is
        pending and the caller must drop the item (recovery will
        reschedule whatever still needs to run)."""
        with self._lock:
            if self._recovery_devices and not self._recovering:
                return False
            self.active += 1
            return True

    def leave(self) -> bool:
        """A task left the in-flight set; True when the caller must run
        the recovery pass (it observed quiescence with recovery
        pending)."""
        with self._lock:
            self.active -= 1
            return (
                self.active == 0
                and bool(self._recovery_devices)
                and not self._recovering
            )

    def request_recovery(self, ordinal: int) -> bool:
        """Note that device *ordinal* failed; True when the caller
        should run recovery right now (nothing is in flight)."""
        with self._lock:
            self.gen += 1  # invalidate queued items immediately
            self._recovery_devices.add(ordinal)
            return self.active == 0 and not self._recovering

    def take_recovery(self) -> Set[int]:
        """Claim the pending recovery set (called by the recovery pass)."""
        with self._lock:
            self._recovering = True
            devices, self._recovery_devices = self._recovery_devices, set()
            return devices

    def finish_recovery(self) -> bool:
        """Mark recovery done; True when new failures arrived meanwhile
        (the caller should run another pass)."""
        with self._lock:
            self._recovering = False
            return bool(self._recovery_devices) and self.active == 0

    @property
    def recovery_pending(self) -> bool:
        with self._lock:
            return bool(self._recovery_devices) or self._recovering


_frozen_ids = itertools.count()


class FrozenTopology:
    """Immutable compiled form of a :class:`Heteroflow` graph.

    Built by :meth:`Heteroflow.freeze`: one planning pass validates the
    graph and lowers it to *slots* — a topological order where node
    *s*'s successor and join-counter state are plain tuple lookups, no
    per-node dict or lock traffic.  The executor keys its compiled-plan
    cache (placement grouping, device assignment, buddy-rounded
    footprint) on :attr:`fid`, so repeated ``run(frozen)`` submissions
    replay without re-running Algorithm-1 placement or graph
    validation (docs/runtime.md, "Freeze and replay").

    The compiled state is shared by every replay and never mutated;
    per-submission state (join counters, callables patched by
    ``bindings=``) lives on the :class:`ReplayTopology`.
    """

    def __init__(self, graph: "Heteroflow") -> None:
        if graph.empty:
            raise GraphError(f"cannot freeze empty graph {graph.name!r}")
        graph.validate()
        order = graph.topological_order()
        self.graph = graph
        #: plan-cache key: unique per freeze, stable across submissions
        self.fid = next(_frozen_ids)
        #: slot -> node, in topological (ready) order
        self.nodes: Tuple = tuple(order)
        slot_of = {id(n): s for s, n in enumerate(order)}
        #: slot -> successor slots (tuple of ints)
        self.succ_slots: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(slot_of[id(s)] for s in n.successors) for n in order
        )
        #: slot -> initial join counter (number of dependents)
        self.join_init: Tuple[int, ...] = tuple(
            len(n.dependents) for n in order
        )
        #: slots with no dependents (run-ready at pass start)
        self.source_slots: Tuple[int, ...] = tuple(
            s for s, n in enumerate(order) if not n.dependents
        )
        #: slot -> host callable (None for GPU slots)
        self.callables: Tuple = tuple(n.callable for n in order)
        self.has_gpu = any(n.type.is_gpu for n in order)
        #: slot-based fast path: host-only graphs with no per-task
        #: resilience overrides (GPU slots and retry/timeout routing
        #: go through the general per-node machinery)
        self.fast_capable = not self.has_gpu and all(
            n.retry_policy is None and n.timeout_s is None for n in order
        )
        # bindings lookup: host-task name -> slot; duplicate names are
        # poisoned (-1) and rejected at bind time
        host_slots: Dict[str, int] = {}
        for s, n in enumerate(order):
            if n.callable is not None:
                host_slots[n.name] = -1 if n.name in host_slots else s
        self._host_slots = host_slots
        self._footprint: Optional[int] = None
        self._lint_cache: Dict[tuple, object] = {}

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def predicted_footprint(self) -> int:
        """Buddy-rounded device-memory footprint, computed once.

        Same quantity as
        :func:`repro.service.admission.predicted_footprint_bytes` — the
        admission ledger charges replays from this cache instead of
        re-deriving the HF020 capacity model per submission.
        """
        fp = self._footprint
        if fp is None:
            from repro.service.admission import predicted_footprint_bytes

            fp = predicted_footprint_bytes(self.graph)
            self._footprint = fp
        return fp

    def lint(self, **kwargs):
        """Cached hflint report (the graph can no longer change).

        One analysis per distinct keyword set; repeat calls return the
        identical :class:`repro.analysis.LintReport` object.
        """
        try:
            key = tuple(sorted(kwargs.items()))
        except TypeError:
            key = None
        if key is not None:
            cached = self._lint_cache.get(key)
            if cached is not None:
                return cached
        from repro.analysis import lint as _lint

        report = _lint(self.graph, **kwargs)
        if key is not None:
            self._lint_cache[key] = report
        return report

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FrozenTopology({self.graph.name!r}, slots={len(self.nodes)}, "
            f"fast={self.fast_capable})"
        )


class ReplayTopology(Topology):
    """Per-submission state for one replay of a :class:`FrozenTopology`.

    Inherits the whole submission lifecycle from :class:`Topology`
    (graph FIFO, futures, cancel/deadline, admission release, drain and
    shutdown stranding guarantees) and adds the preallocated slot state
    the executor's fast path mutates: a per-slot join-counter array
    reset from the frozen ``join_init`` each pass, one lock covering
    successor release + pass accounting, and the (possibly
    ``bindings``-patched) per-slot callable table.
    """

    def __init__(
        self,
        frozen: FrozenTopology,
        repeats: Optional[int] = 1,
        predicate: Optional[Callable[[], bool]] = None,
        policy: Optional[object] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        bindings: Optional[Dict[str, Callable]] = None,
    ) -> None:
        super().__init__(
            frozen.graph,
            repeats=repeats,
            predicate=predicate,
            policy=policy,
            priority=priority,
            deadline_s=deadline_s,
        )
        self.frozen = frozen
        if bindings:
            callables = list(frozen.callables)
            bound: Dict[int, Callable] = {}
            for name, fn in bindings.items():
                slot = frozen._host_slots.get(name)
                if slot is None:
                    raise GraphError(
                        f"bindings: frozen graph {frozen.graph.name!r} has "
                        f"no host task named {name!r}"
                    )
                if slot < 0:
                    raise GraphError(
                        f"bindings: host task name {name!r} is ambiguous "
                        f"in frozen graph {frozen.graph.name!r}"
                    )
                if not callable(fn):
                    raise GraphError(
                        f"bindings: value for {name!r} is not callable"
                    )
                callables[slot] = fn
                bound[frozen.nodes[slot].nid] = fn
            self.callables: Tuple = tuple(callables)
            self.bound = bound
        else:
            # share the frozen table: zero per-submission allocation
            self.callables = frozen.callables
        #: per-slot join counters, reset from join_init each pass
        self.joins: List[int] = list(frozen.join_init)
        #: one lock per completion: successor release + pass accounting
        self.replay_lock = threading.Lock()
        #: slot fast path applies only without run-level resilience
        self.fast = (
            frozen.fast_capable
            and self.retry_policy is None
            and self.timeout_s is None
        )

    def reset_joins(self) -> None:
        self.joins[:] = self.frozen.join_init
