"""Composable task-graph patterns built on the core API.

The paper positions Heteroflow as "a higher-level alternative in the
modern C++ domain"; this module supplies the reusable decomposition
patterns applications keep rebuilding by hand:

- :func:`parallel_for` — chunked host-task loops;
- :func:`gpu_map` — the pull -> kernel -> push pipeline over one or
  more arrays, wired and shaped automatically;
- :func:`reduce_tree` — tree-shaped host reductions;
- :func:`pipeline` — a linear stage chain over a shared state.

Every helper returns (first_tasks, last_tasks) handle lists so the
generated subgraph composes with explicit ``precede``/``succeed``
edges like any hand-built tasks.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.heteroflow import Heteroflow
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task
from repro.errors import GraphError


def parallel_for(
    hf: Heteroflow,
    n: int,
    body: Callable[[int], None],
    *,
    chunk: int = 1,
    name: str = "pfor",
) -> Tuple[List[HostTask], List[HostTask]]:
    """Create host tasks covering ``body(i) for i in range(n)``.

    Iterations group into chunks of *chunk*; the returned
    ``(firsts, lasts)`` are the same task list (the loop is flat), so
    callers can fence the whole loop with one ``precede`` each side.
    """
    if n < 0:
        raise GraphError("loop bound must be non-negative")
    if chunk < 1:
        raise GraphError("chunk must be positive")
    tasks: List[HostTask] = []
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)

        def run(lo=lo, hi=hi) -> None:
            for i in range(lo, hi):
                body(i)

        tasks.append(hf.host(run, name=f"{name}[{lo}:{hi}]"))
    return tasks, list(tasks)


def gpu_map(
    hf: Heteroflow,
    kernel: Callable,
    *arrays: np.ndarray,
    extra_args: Sequence[Any] = (),
    writeback: Optional[Sequence[bool]] = None,
    block_x: int = 256,
    name: str = "map",
) -> Tuple[List[Task], List[Task], KernelTask]:
    """Build the canonical pull -> kernel -> push pipeline.

    *kernel* is launched over the first array's length with the usual
    ``(N + block-1) / block`` shape and receives
    ``(*extra_args, *device_arrays)``.  *writeback* selects which
    arrays are pushed back (default: all).  Returns
    ``(pulls, pushes, kernel_task)``; the generated edges are
    pull->kernel->push, so callers fence with the pulls and pushes.
    """
    if not arrays:
        raise GraphError("gpu_map needs at least one array")
    if writeback is None:
        writeback = [True] * len(arrays)
    if len(writeback) != len(arrays):
        raise GraphError("writeback must align with arrays")
    n = int(np.asarray(arrays[0]).size)

    pulls: List[PullTask] = [
        hf.pull(a, name=f"{name}_pull{i}") for i, a in enumerate(arrays)
    ]
    k = (
        hf.kernel(kernel, *extra_args, *pulls, name=f"{name}_kernel")
        .block_x(block_x)
        .grid_x(max(math.ceil(n / block_x), 1))
    )
    k.succeed(*pulls)
    pushes: List[PushTask] = []
    for i, (a, wb) in enumerate(zip(arrays, writeback)):
        if wb:
            p = hf.push(pulls[i], a, name=f"{name}_push{i}")
            p.succeed(k)
            pushes.append(p)
    return list(pulls), list(pushes), k


def reduce_tree(
    hf: Heteroflow,
    leaves: Sequence[Task],
    combine: Callable[[int, int], None],
    *,
    arity: int = 2,
    name: str = "reduce",
) -> HostTask:
    """Tree reduction over finished *leaves*.

    ``combine(level, slot)`` runs once per internal node, after all of
    its children; callers fold their own accumulator state inside it.
    Returns the root task (succeeding everything).
    """
    if not leaves:
        raise GraphError("reduce_tree needs at least one leaf")
    if arity < 2:
        raise GraphError("arity must be >= 2")
    level = 0
    current: List[Task] = list(leaves)
    while len(current) > 1:
        nxt: List[Task] = []
        for slot, lo in enumerate(range(0, len(current), arity)):
            group = current[lo : lo + arity]
            node = hf.host(
                lambda level=level, slot=slot: combine(level, slot),
                name=f"{name}_l{level}_{slot}",
            )
            node.succeed(*group)
            nxt.append(node)
        current = nxt
        level += 1
    if level == 0:
        # single leaf: still emit one combine so the contract (the
        # returned root is a combine node) holds
        node = hf.host(lambda: combine(0, 0), name=f"{name}_l0_0")
        node.succeed(current[0])
        return node
    return current[0]  # type: ignore[return-value]


def pipeline(
    hf: Heteroflow,
    stages: Sequence[Callable[[], None]],
    *,
    name: str = "stage",
) -> Tuple[HostTask, HostTask]:
    """A linear chain of host stages; returns (first, last)."""
    if not stages:
        raise GraphError("pipeline needs at least one stage")
    tasks = [hf.host(fn, name=f"{name}{i}") for i, fn in enumerate(stages)]
    for a, b in zip(tasks, tasks[1:]):
        a.precede(b)
    return tasks[0], tasks[-1]
