"""Graph structure serialization (JSON).

Exports the *structure* of a Heteroflow graph — tasks, types, names,
launch shapes, dependencies, kernel-source links — to plain dicts/JSON
for tooling (visualizers, notebooks, diffing graph generators).
Callables and spans are runtime objects and do not serialize; loading
therefore reconstructs a **skeleton** whose work must be rebound via
the placeholder mechanism before execution.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.heteroflow import Heteroflow
from repro.core.node import TaskType
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task
from repro.errors import GraphError

#: schema version for forward compatibility
SCHEMA_VERSION = 1


def graph_to_dict(graph: Heteroflow) -> Dict[str, Any]:
    """Structure-only dict representation of *graph*."""
    index = {n.nid: i for i, n in enumerate(graph.nodes)}
    tasks: List[Dict[str, Any]] = []
    for n in graph.nodes:
        entry: Dict[str, Any] = {
            "id": index[n.nid],
            "name": n.name,
            "type": n.type.value,
            "successors": [index[s.nid] for s in n.successors],
        }
        if n.type is TaskType.KERNEL:
            entry["grid"] = list(n.launch.grid)
            entry["block"] = list(n.launch.block)
            entry["shm"] = n.launch.shm
            entry["sources"] = [index[p.nid] for p in n.kernel_sources]
        if n.type is TaskType.PUSH and n.source is not None:
            entry["source"] = index[n.source.nid]
        tasks.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "name": graph.name,
        "num_tasks": len(tasks),
        "tasks": tasks,
    }


def graph_to_json(graph: Heteroflow, indent: int = None) -> str:
    """JSON text of :func:`graph_to_dict`."""
    return json.dumps(graph_to_dict(graph), indent=indent)


_HANDLE_TYPES = {
    "host": HostTask,
    "pull": PullTask,
    "push": PushTask,
    "kernel": KernelTask,
    "placeholder": Task,
}


def skeleton_from_dict(data: Dict[str, Any]) -> Heteroflow:
    """Rebuild a placeholder skeleton with the serialized structure.

    Every task is a placeholder of the recorded kind; dependency edges
    and names are restored.  Kernel launch shapes are reapplied once
    work is rebound (they are recorded in the dict for callers).
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise GraphError(f"unsupported graph schema {data.get('schema')!r}")
    hf = Heteroflow(data.get("name", ""))
    handles: List[Task] = []
    for entry in data["tasks"]:
        kind = entry.get("type", "placeholder")
        if kind not in _HANDLE_TYPES:
            raise GraphError(f"unknown task type {kind!r}")
        t = hf.placeholder(_HANDLE_TYPES[kind], name=entry.get("name", ""))
        handles.append(t)
    for entry, t in zip(data["tasks"], handles):
        for sid in entry.get("successors", ()):
            t.precede(handles[sid])
    return hf


def skeleton_from_json(text: str) -> Heteroflow:
    return skeleton_from_dict(json.loads(text))


def structure_equal(a: Heteroflow, b: Heteroflow) -> bool:
    """True iff two graphs have identical structure (names, types,
    edges, kernel shapes) under creation-order correspondence."""
    da, db = graph_to_dict(a), graph_to_dict(b)
    da.pop("name")
    db.pop("name")
    return da == db
