"""Executor observers: task lifecycle hooks for tracing and profiling.

The benchmark harness and tests need visibility into when each task ran
and where (worker, device, stream).  Observers receive begin/end
callbacks on the executing thread; :class:`TraceObserver` records them
into an in-memory trace suitable for Gantt rendering, utilization
stats, and schedule validation (:mod:`repro.check`).

Each :class:`TaskRecord` carries enough identity for a validator to
reconstruct the schedule exactly: the node id (names may repeat), the
device ordinal, the stream id, the stream-local sequence number of the
operation that completed the task, and monotonic begin/end stamps
(``time.perf_counter``, comparable across threads).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node
    from repro.gpu.stream import Stream


class ExecutorObserver:
    """Base class; all hooks are optional overrides.

    Hooks run on worker or stream-dispatcher threads; implementations
    must be thread-safe and fast.
    """

    def on_task_begin(self, worker_id: int, node: "Node") -> None:
        """Called just before a task's work executes."""

    def on_task_end(
        self,
        worker_id: int,
        node: "Node",
        stream: Optional["Stream"] = None,
        stream_seq: Optional[int] = None,
        fallback: bool = False,
        replayed: bool = False,
    ) -> None:
        """Called after the task (including async GPU part) completes.

        For GPU tasks *stream* is the stream the operation ran on and
        *stream_seq* its stream-local completion index; both are
        ``None`` for host tasks.  *fallback* marks a degraded host-side
        execution of a GPU task; *replayed* marks a re-execution after
        a device failure invalidated the committed first run
        (docs/resilience.md).
        """

    def on_task_retry(
        self,
        worker_id: int,
        node: "Node",
        attempt: int,
        error: BaseException,
    ) -> None:
        """Called when attempt *attempt* (1-based) of a task failed and
        the executor decided to run it again.  No trace record is
        committed for the failed attempt."""

    def on_task_replayed(self, node: "Node") -> None:
        """Called when a committed execution of *node* was invalidated
        by a device failure; the task will run again.  Tracing
        observers should retract the stale record so exact-once
        accounting holds."""

    def on_topology_begin(self, graph_name: str, num_nodes: int) -> None:
        """Called when a submitted graph starts an execution pass."""

    def on_topology_end(self, graph_name: str, num_nodes: int) -> None:
        """Called when a submitted graph finishes all its passes."""


@dataclass
class TaskRecord:
    """One executed task instance."""

    name: str
    type: str
    worker_id: int
    device: Optional[int]
    begin: float
    end: float
    #: node id of the executed task (stable across passes)
    nid: int = -1
    #: stream id the GPU operation ran on (None for host tasks)
    stream: Optional[int] = None
    #: stream-local completion sequence number (None for host tasks)
    stream_seq: Optional[int] = None
    #: GPU task executed on the host via its registered fallback
    fallback: bool = False
    #: re-execution after a device failure retracted the first run
    replayed: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.begin


class TraceObserver(ExecutorObserver):
    """Collects :class:`TaskRecord` entries with monotonic stamps."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open: Dict[int, tuple] = {}
        self.records: List[TaskRecord] = []
        self.topologies_started = 0
        self.topologies_finished = 0

    def on_task_begin(self, worker_id: int, node: "Node") -> None:
        with self._lock:
            self._open[node.nid] = (worker_id, time.perf_counter())

    def on_task_end(
        self,
        worker_id: int,
        node: "Node",
        stream: Optional["Stream"] = None,
        stream_seq: Optional[int] = None,
        fallback: bool = False,
        replayed: bool = False,
    ) -> None:
        now = time.perf_counter()
        with self._lock:
            wid, begin = self._open.pop(node.nid, (worker_id, now))
            self.records.append(
                TaskRecord(
                    name=node.name,
                    type=node.type.value,
                    worker_id=wid,
                    device=node.device if not fallback else None,
                    begin=begin,
                    end=now,
                    nid=node.nid,
                    stream=stream.sid if stream is not None else None,
                    stream_seq=stream_seq,
                    fallback=fallback,
                    replayed=replayed,
                )
            )

    def on_task_replayed(self, node: "Node") -> None:
        # retract the committed record so the coming re-execution keeps
        # the trace exact-once; scan from the end (the stale record is
        # almost always the most recent one for this nid)
        with self._lock:
            for i in range(len(self.records) - 1, -1, -1):
                if self.records[i].nid == node.nid:
                    del self.records[i]
                    break
            self._open.pop(node.nid, None)

    def on_topology_begin(self, graph_name: str, num_nodes: int) -> None:
        with self._lock:
            self.topologies_started += 1

    def on_topology_end(self, graph_name: str, num_nodes: int) -> None:
        with self._lock:
            self.topologies_finished += 1

    # -- queries -----------------------------------------------------
    def count_by_type(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for r in self.records:
                out[r.type] = out.get(r.type, 0) + 1
            return out

    def tasks_per_device(self) -> Dict[Optional[int], int]:
        with self._lock:
            out: Dict[Optional[int], int] = {}
            for r in self.records:
                if r.device is not None:
                    out[r.device] = out.get(r.device, 0) + 1
            return out

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
            self._open.clear()
