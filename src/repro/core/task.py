"""Task handles: the user-facing wrapper around graph nodes.

A task handle is a lightweight object wrapping a node pointer (paper
§III-A-1).  Handles compare equal when they wrap the same node, can be
*empty* (placeholders), and expose the fluent dependency methods
``precede``/``succeed`` plus type-specific configuration (kernel shape,
work rebinding).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.core.node import Node, TaskType
from repro.errors import EmptyTaskError, FrozenTopologyError, GraphError
from repro.gpu.kernel import LaunchConfig
from repro.utils.span import Span


class Task:
    """Base handle; may be empty (not yet bound to a node)."""

    __slots__ = ("_node",)

    def __init__(self, node: Optional[Node] = None) -> None:
        self._node = node

    # -- identity ----------------------------------------------------
    @property
    def empty(self) -> bool:
        """True for a placeholder handle with no graph node."""
        return self._node is None

    def _require(self) -> Node:
        if self._node is None:
            raise EmptyTaskError("operation on an empty task handle")
        return self._node

    def _mutable(self, operation: str) -> Node:
        """Resolve the node for a mutating method; raises
        :class:`~repro.errors.FrozenTopologyError` once the owning graph
        was frozen (docs/runtime.md, "Freeze and replay")."""
        node = self._require()
        if node.frozen:
            raise FrozenTopologyError(operation, node.name)
        return node

    @property
    def node(self) -> Node:
        """The underlying node (internal; used by executor/placement)."""
        return self._require()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Task) and other._node is self._node

    def __hash__(self) -> int:
        return id(self._node)

    # -- attributes ----------------------------------------------------
    @property
    def name(self) -> str:
        return self._require().name

    def rename(self, name: str) -> "Task":
        """Set a human-readable name; returns self for chaining."""
        self._mutable("rename").name = str(name)
        return self

    @property
    def type(self) -> TaskType:
        return self._require().type

    @property
    def num_successors(self) -> int:
        return self._require().num_successors

    @property
    def num_dependents(self) -> int:
        return self._require().num_dependents

    # -- dependencies ---------------------------------------------------
    def precede(self, *tasks: "Task") -> "Task":
        """Force this task to run before every task in *tasks*."""
        me = self._mutable("precede")
        for t in tasks:
            me.precede(t._require())
        return self

    def succeed(self, *tasks: "Task") -> "Task":
        """Force this task to run after every task in *tasks*."""
        me = self._mutable("succeed")
        for t in tasks:
            t._require().precede(me)
        return self

    # -- resilience (docs/resilience.md) -----------------------------
    def retry(self, policy: Optional[Any] = None, **kwargs: Any) -> "Task":
        """Attach a per-task :class:`~repro.resilience.RetryPolicy`.

        Accepts a ready policy or its keyword fields
        (``t.retry(max_attempts=5, base_delay=0.01)``); overrides any
        run-level policy for this task only.
        """
        from repro.resilience.policy import RetryPolicy

        node = self._mutable("retry")
        if policy is None:
            policy = RetryPolicy(**kwargs)
        elif kwargs:
            raise GraphError(
                "task.retry() takes a RetryPolicy or keyword fields, not both"
            )
        elif not isinstance(policy, RetryPolicy):
            raise GraphError(
                f"task.retry() takes a RetryPolicy, got {type(policy).__name__}"
            )
        node.retry_policy = policy
        return self

    def timeout(self, seconds: float) -> "Task":
        """Attach a per-task deadline in seconds (overrides the
        run-level policy timeout for this task)."""
        if seconds is not None and seconds <= 0:
            raise GraphError("task timeout must be positive")
        self._mutable("timeout").timeout_s = None if seconds is None else float(seconds)
        return self

    def effects(self) -> Any:
        """Infer this task's memory effects from its callable's bytecode.

        Returns a :class:`repro.analysis.effects.TaskEffects` describing
        which parameters, captured objects, and pull-task spans the body
        reads or writes, plus nondeterminism markers.  Pure inspection:
        nothing is executed and the graph is not modified.
        """
        from repro.analysis.effects import infer_task_effects

        return infer_task_effects(self._require())

    def __repr__(self) -> str:  # pragma: no cover
        if self._node is None:
            return f"{type(self).__name__}(<empty>)"
        return f"{type(self).__name__}({self._node.name!r})"


class HostTask(Task):
    """Runs a callable on a CPU core."""

    __slots__ = ()

    def host(self, callable_: Callable[[], Any]) -> "HostTask":
        """(Re)bind the callable; used to fill placeholders."""
        if not callable(callable_):
            raise GraphError("host task requires a callable")
        node = self._mutable("host")
        node.callable = callable_
        node.type = TaskType.HOST
        return self


class PullTask(Task):
    """Copies host data to its assigned GPU (H2D)."""

    __slots__ = ()

    def pull(self, *args: Any) -> "PullTask":
        """(Re)bind the host span; arguments follow :class:`Span` forms."""
        node = self._mutable("pull")
        node.span = args[0] if len(args) == 1 and isinstance(args[0], Span) else Span(*args)
        node.type = TaskType.PULL
        return self

    @property
    def device(self) -> Optional[int]:
        """GPU ordinal assigned by the last device-placement pass."""
        return self._require().device


class PushTask(Task):
    """Copies a pull task's device data back to the host (D2H)."""

    __slots__ = ()

    def push(self, source: PullTask, *args: Any) -> "PushTask":
        """(Re)bind the source pull task and target span."""
        if not isinstance(source, PullTask) or source.empty:
            raise GraphError("push task requires a non-empty pull task source")
        node = self._mutable("push")
        node.source = source.node
        node.span = args[0] if len(args) == 1 and isinstance(args[0], Span) else Span(*args)
        node.type = TaskType.PUSH
        return self


class KernelTask(Task):
    """Offloads a kernel callable to its assigned GPU."""

    __slots__ = ()

    def kernel(self, fn: Callable, *args: Any) -> "KernelTask":
        """(Re)bind the kernel function and arguments.

        Pull-task arguments are gathered as *sources* (paper Listing 8,
        ``gather_sources``): the placement pass uses them to co-locate
        the kernel with its data.  They do **not** create dependency
        edges — dependencies stay explicit, per the paper.
        """
        if not callable(fn):
            raise GraphError("kernel task requires a callable kernel")
        node = self._mutable("kernel")
        node.kernel_fn = fn
        node.kernel_args = tuple(args)
        node.kernel_sources = [a.node for a in args if isinstance(a, PullTask)]
        node.kernel_reads = set()
        node.kernel_writes = set()
        node.type = TaskType.KERNEL
        return self

    # -- access-mode declarations (consumed by repro.analysis) -------
    def _declare(self, attr: str, pulls: Tuple["PullTask", ...]) -> "KernelTask":
        node = self._mutable(attr.replace("kernel_", ""))
        for p in pulls:
            if not isinstance(p, PullTask) or p.empty:
                raise GraphError(
                    "access-mode declarations take non-empty pull tasks"
                )
            if p.node not in node.kernel_sources:
                raise GraphError(
                    f"kernel {node.name!r} declares access to pull task "
                    f"{p.node.name!r}, which is not among its arguments"
                )
            getattr(node, attr).add(p.node)
        return self

    def reads(self, *pulls: "PullTask") -> "KernelTask":
        """Declare *pulls* read-only for this kernel.

        Kernels are opaque callables, so the static analyzer
        (:mod:`repro.analysis`) must otherwise assume every pull
        argument is read **and** written.  Marking the inputs read-only
        lets unordered kernels legitimately share them (e.g. replicated
        weights, adjacency structures) without tripping the HF011 race
        rule.  Declarations are reset if the kernel is rebound.
        """
        return self._declare("kernel_reads", pulls)

    def writes(self, *pulls: "PullTask") -> "KernelTask":
        """Declare *pulls* written by this kernel (read-write).

        Only needed to override an earlier :meth:`reads` declaration —
        undeclared pull arguments already default to read-write.
        """
        return self._declare("kernel_writes", pulls)

    def host_fallback(self, fn: Optional[Callable] = None) -> "KernelTask":
        """Register a CPU fallback for graceful degradation.

        When every GPU has failed, the executor runs *fn* over the host
        shadow arrays of the kernel's pull arguments instead of failing
        the topology (docs/resilience.md).  With no argument, the bound
        kernel callable itself is reused — correct whenever the kernel
        is a plain numpy function of its views, which all simulated
        kernels are.
        """
        node = self._mutable("host_fallback")
        if fn is None:
            if node.kernel_fn is None:
                raise GraphError(
                    "host_fallback() without a function requires the "
                    "kernel to be bound first"
                )
            node.fallback_fn = node.kernel_fn
        else:
            if not callable(fn):
                raise GraphError("host fallback requires a callable")
            node.fallback_fn = fn
        return self

    # -- launch-shape builders (paper: .block_x(...) etc.) ----------
    def _update(self, **kw: int) -> "KernelTask":
        node = self._mutable("update the launch shape of")
        grid = list(node.launch.grid)
        block = list(node.launch.block)
        shm = node.launch.shm
        for key, val in kw.items():
            axis = {"x": 0, "y": 1, "z": 2}[key[-1]]
            if key.startswith("grid"):
                grid[axis] = int(val)
            else:
                block[axis] = int(val)
        node.launch = LaunchConfig(tuple(grid), tuple(block), shm)
        return self

    def grid_x(self, v: int) -> "KernelTask":
        return self._update(grid_x=v)

    def grid_y(self, v: int) -> "KernelTask":
        return self._update(grid_y=v)

    def grid_z(self, v: int) -> "KernelTask":
        return self._update(grid_z=v)

    def block_x(self, v: int) -> "KernelTask":
        return self._update(block_x=v)

    def block_y(self, v: int) -> "KernelTask":
        return self._update(block_y=v)

    def block_z(self, v: int) -> "KernelTask":
        return self._update(block_z=v)

    def shm(self, nbytes: int) -> "KernelTask":
        node = self._mutable("shm")
        node.launch = LaunchConfig(node.launch.grid, node.launch.block, int(nbytes))
        return self

    def grid(self, gx: int, gy: int = 1, gz: int = 1) -> "KernelTask":
        node = self._mutable("grid")
        node.launch = LaunchConfig((int(gx), int(gy), int(gz)), node.launch.block, node.launch.shm)
        return self

    def block(self, bx: int, by: int = 1, bz: int = 1) -> "KernelTask":
        node = self._mutable("block")
        node.launch = LaunchConfig(node.launch.grid, (int(bx), int(by), int(bz)), node.launch.shm)
        return self

    @property
    def launch_config(self) -> LaunchConfig:
        return self._require().launch

    @property
    def sources(self) -> Tuple[PullTask, ...]:
        """The gathered source pull tasks."""
        return tuple(PullTask(n) for n in self._require().kernel_sources)

    @property
    def device(self) -> Optional[int]:
        return self._require().device


_HANDLE_FOR = {
    TaskType.HOST: HostTask,
    TaskType.PULL: PullTask,
    TaskType.PUSH: PushTask,
    TaskType.KERNEL: KernelTask,
    TaskType.PLACEHOLDER: Task,
}


def handle_for(node: Node) -> Task:
    """Wrap *node* in the handle class matching its task type."""
    return _HANDLE_FOR[node.type](node)
