"""The :class:`Heteroflow` graph: task creation, inspection, DOT dump.

Mirrors the paper's ``hf::Heteroflow`` class (§III-A): an object-
oriented container for one task dependency graph, with creation methods
for the four task types, placeholder creation, and DOT visualization
(Listing 11).  Graphs are passive — they execute only when submitted to
an :class:`~repro.core.executor.Executor`.
"""

from __future__ import annotations

import io
import itertools
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Type

from repro.core.node import Node, TaskType
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task, handle_for
from repro.errors import CycleError, FrozenTopologyError, GraphError
from repro.utils.dot import DotWriter

_graph_ids = itertools.count()

#: DOT fill colours per task type, for quick visual triage.
_DOT_STYLE: Dict[TaskType, str] = {
    TaskType.HOST: "white",
    TaskType.PULL: "lightskyblue",
    TaskType.PUSH: "lightsalmon",
    TaskType.KERNEL: "palegreen",
    TaskType.PLACEHOLDER: "lightgray",
}


class Heteroflow:
    """A directed-acyclic task dependency graph."""

    def __init__(self, name: str = "") -> None:
        self.name = name or f"heteroflow{next(_graph_ids)}"
        self._nodes: List[Node] = []
        #: compiled form, set by :meth:`freeze` (docs/runtime.md)
        self._frozen = None

    # -- task creation ---------------------------------------------
    def _add(self, type_: TaskType, name: str = "") -> Node:
        if self._frozen is not None:
            raise FrozenTopologyError("add a task", self.name)
        node = Node(type_, name)
        self._nodes.append(node)
        return node

    def host(self, callable_: Callable[[], Any], name: str = "") -> HostTask:
        """Create a host task running *callable_* on a CPU core."""
        return HostTask(self._add(TaskType.HOST, name)).host(callable_)

    def pull(self, *args: Any, name: str = "") -> PullTask:
        """Create a pull (H2D) task over a stateful span (Listing 3)."""
        return PullTask(self._add(TaskType.PULL, name)).pull(*args)

    def push(self, source: PullTask, *args: Any, name: str = "") -> PushTask:
        """Create a push (D2H) task from *source*'s device data (Listing 5)."""
        return PushTask(self._add(TaskType.PUSH, name)).push(source, *args)

    def kernel(self, fn: Callable, *args: Any, name: str = "") -> KernelTask:
        """Create a kernel task offloading *fn* to a GPU (Listing 7).

        Pull-task arguments become placement sources; dependencies on
        them must still be added explicitly with ``precede``/``succeed``.
        """
        return KernelTask(self._add(TaskType.KERNEL, name)).kernel(fn, *args)

    def placeholder(self, handle_type: Type[Task] = Task, name: str = "") -> Task:
        """Create a node whose work is bound later (paper §III-A-1).

        The returned handle participates in dependency links right away;
        binding work (``.host(...)``, ``.pull(...)``, ...) must happen
        before execution or the run fails with ``EmptyTaskError``.
        """
        node = self._add(TaskType.PLACEHOLDER, name)
        if handle_type is Task:
            return Task(node)
        if handle_type in (HostTask, PullTask, PushTask, KernelTask):
            return handle_type(node)
        raise GraphError(f"unknown task handle type {handle_type!r}")

    # -- inspection --------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def empty(self) -> bool:
        return not self._nodes

    @property
    def nodes(self) -> List[Node]:
        """Internal node list (used by executor/placement/simulator)."""
        return self._nodes

    def tasks(self) -> List[Task]:
        """Handles for every node, in creation order."""
        return [handle_for(n) for n in self._nodes]

    def num_tasks_of(self, type_: TaskType) -> int:
        return sum(1 for n in self._nodes if n.type is type_)

    def clear(self) -> None:
        """Remove all tasks (outstanding handles become dangling)."""
        if self._frozen is not None:
            raise FrozenTopologyError("clear", self.name)
        self._nodes.clear()

    # -- validation --------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Kahn topological order; raises :class:`CycleError` on cycles
        and :class:`GraphError` on edges escaping this graph."""
        own = set(map(id, self._nodes))
        indeg: Dict[int, int] = {}
        for n in self._nodes:
            indeg[id(n)] = len(n.dependents)
            for s in n.successors:
                if id(s) not in own:
                    raise GraphError(
                        f"task {n.name!r} precedes {s.name!r}, "
                        f"which belongs to a different graph"
                    )
        ready = deque(n for n in self._nodes if indeg[id(n)] == 0)
        order: List[Node] = []
        while ready:
            n = ready.popleft()
            order.append(n)
            for s in n.successors:
                indeg[id(s)] -= 1
                if indeg[id(s)] == 0:
                    ready.append(s)
        if len(order) != len(self._nodes):
            stuck = [n.name for n in self._nodes if indeg[id(n)] > 0]
            raise CycleError(stuck)
        return order

    def validate(self) -> None:
        """Check the graph is acyclic and every node has work bound."""
        self.topological_order()
        for n in self._nodes:
            if n.type is TaskType.PLACEHOLDER:
                raise GraphError(f"placeholder task {n.name!r} was never assigned work")
            if n.type is TaskType.HOST and n.callable is None:
                raise GraphError(f"host task {n.name!r} has no callable")
            if n.type is TaskType.PULL and n.span is None:
                raise GraphError(f"pull task {n.name!r} has no span")
            if n.type is TaskType.PUSH and (n.source is None or n.span is None):
                raise GraphError(f"push task {n.name!r} is incompletely bound")
            if n.type is TaskType.KERNEL and n.kernel_fn is None:
                raise GraphError(f"kernel task {n.name!r} has no kernel")

    @property
    def has_gpu_tasks(self) -> bool:
        return any(n.type.is_gpu for n in self._nodes)

    # -- freeze and replay (docs/runtime.md, "Freeze and replay") ----
    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` compiled this graph."""
        return self._frozen is not None

    def freeze(self):
        """Compile this graph into an immutable
        :class:`~repro.core.topology.FrozenTopology` (idempotent).

        One planning pass validates the graph and precomputes the
        topological ready-order slots, per-slot successor lists, join
        counters, and host callables; the executor adds (and caches)
        the device-placement plan and buddy-rounded footprint on first
        submission.  ``Executor.run(frozen)`` then replays the graph
        through a slot-based fast path with no per-submission
        validation, placement, or per-node allocation.

        Freezing is one-way: every later mutation — task creation,
        ``precede``/``succeed``, work rebinding, retry/timeout/launch
        configuration, ``clear()`` — raises a structured
        :class:`~repro.errors.FrozenTopologyError`.  Per-submission host
        callables go through ``run(frozen, bindings=...)`` instead.
        """
        if self._frozen is not None:
            return self._frozen
        from repro.core.topology import FrozenTopology

        frozen = FrozenTopology(self)
        self._frozen = frozen
        for n in self._nodes:
            n.frozen = True
        return frozen

    def lint(self, **kwargs):
        """Run the hflint static analyzer over this graph.

        Returns a :class:`repro.analysis.LintReport` of severity-tiered
        diagnostics (dataflow races, use-before-transfer, capacity
        predictions, ...); keyword arguments are forwarded to
        :func:`repro.analysis.lint`.  Purely an inspection — the graph
        is not modified and nothing executes.

        After :meth:`freeze` the graph can no longer change, so reports
        are cached on the frozen topology (one analysis per distinct
        keyword set) and repeat calls return the same object.
        """
        if self._frozen is not None:
            return self._frozen.lint(**kwargs)
        from repro.analysis import lint as _lint

        return _lint(self, **kwargs)

    # -- visualization ------------------------------------------------
    def dump(self, stream: Optional[io.TextIOBase] = None) -> str:
        """Serialize to GraphViz DOT (Listing 11); returns the text."""
        w = DotWriter(self.name)
        for n in self._nodes:
            label = n.name
            if n.type is TaskType.KERNEL:
                gx, _, _ = n.launch.grid
                bx, _, _ = n.launch.block
                label = f"{n.name}\\n<<<{gx},{bx}>>>"
            w.add_node(
                id(n),
                label,
                shape="box" if n.type.is_gpu else "ellipse",
                style="filled",
                fillcolor=_DOT_STYLE[n.type],
            )
        for n in self._nodes:
            for s in n.successors:
                w.add_edge(id(n), id(s))
        return w.render(stream)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Heteroflow({self.name!r}, tasks={len(self._nodes)})"
