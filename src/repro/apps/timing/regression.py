"""Logistic regression with gradient descent, as GPU kernels.

The correlation layer fits, per view, a logistic model predicting
whether an endpoint violates timing in that view from path statistics
(arrival, stage count, CPPR credit, ...) extracted by the CPU stage
(paper §IV-A: "a GPU-based algorithm to perform logistic regression
with gradient descent").

``logreg_gd_kernel`` is written in the simulated-CUDA style: it
receives device-memory views and runs a fixed number of full-batch GD
epochs entirely on the "device".  ``train_logreg_host`` is the CPU
reference implementation used for differential testing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def logreg_loss(X: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
    """Mean cross-entropy loss."""
    p = sigmoid(X @ w)
    eps = 1e-12
    return float(-np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))


def gd_step(X: np.ndarray, y: np.ndarray, w: np.ndarray, lr: float) -> np.ndarray:
    """One full-batch gradient-descent step (returns the new weights)."""
    grad = X.T @ (sigmoid(X @ w) - y) / X.shape[0]
    return w - lr * grad


def logreg_gd_kernel(ctx, n: int, d: int, epochs: int, lr: float, x_dev, y_dev, w_dev) -> None:
    """GPU kernel: *epochs* of full-batch GD on device memory.

    ``x_dev`` holds the row-major n×d feature matrix, ``y_dev`` the n
    labels, ``w_dev`` the d weights (updated in place).  The launch
    geometry (``ctx``) is cost-model metadata; the math is
    numpy-vectorized over the whole batch, the Python analogue of a
    grid covering all samples.
    """
    X = x_dev[: n * d].reshape(n, d)
    y = y_dev[:n]
    w = w_dev[:d].astype(np.float64)
    for _ in range(int(epochs)):
        w = gd_step(X, y, w, lr)
    w_dev[:d] = w


def train_logreg_host(
    X: np.ndarray,
    y: np.ndarray,
    epochs: int = 100,
    lr: float = 0.5,
    w0: np.ndarray | None = None,
) -> np.ndarray:
    """CPU reference: identical math to :func:`logreg_gd_kernel`."""
    w = np.zeros(X.shape[1], dtype=np.float64) if w0 is None else w0.astype(np.float64)
    for _ in range(int(epochs)):
        w = gd_step(X, y, w, lr)
    return w


def logreg_predict(X: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Class probabilities under the fitted model."""
    return sigmoid(X @ w)


def accuracy(X: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
    """Fraction of samples classified correctly at threshold 0.5."""
    return float(np.mean((logreg_predict(X, w) >= 0.5).astype(np.float64) == y))


def standardize(X: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-standardize features; returns (Xs, mean, std).

    Constant columns get std 1 so they pass through unchanged — the
    bias column survives standardization.
    """
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std < 1e-12] = 1.0
    return (X - mean) / std, mean, std
