"""Common path pessimism removal (CPPR).

In corner-based STA the launch and capture clock paths are derated in
opposite directions (early vs late).  The portion of the clock tree
*common* to both paths cannot simultaneously be early and late, so the
pessimism accumulated on the common segment is credited back — CPPR
(paper refs [29]-[31]).

We generate a binary clock tree over the endpoints and compute, for a
(launch, capture) endpoint pair, the credit ``(late - early) derate ×
common-path delay`` where the common path ends at the pair's lowest
common ancestor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng


@dataclass
class ClockTree:
    """A binary clock distribution tree.

    Leaves map one-to-one onto *sinks* (flop clock pins / endpoints).
    ``parent[i]`` is the parent of tree node ``i`` (root has -1);
    ``delay[i]`` is the delay of the branch entering node ``i``;
    ``leaf_of[sink]`` is the tree node of the sink's leaf.
    """

    parent: np.ndarray
    delay: np.ndarray
    leaf_of: Dict[int, int]
    depth: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.parent.size)

    def path_to_root(self, sink: int) -> List[int]:
        """Tree nodes from the sink's leaf up to (and including) the root."""
        node = self.leaf_of[sink]
        out = [node]
        while self.parent[node] >= 0:
            node = int(self.parent[node])
            out.append(node)
        return out

    def insertion_delay(self, sink: int) -> float:
        """Total clock latency from the root to *sink*."""
        return float(sum(self.delay[n] for n in self.path_to_root(sink)))

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of two sinks' leaves."""
        na, nb = self.leaf_of[a], self.leaf_of[b]
        while na != nb:
            if self.depth[na] >= self.depth[nb]:
                na = int(self.parent[na])
            else:
                nb = int(self.parent[nb])
        return int(na)

    def common_path_delay(self, a: int, b: int) -> float:
        """Delay of the root → LCA segment shared by both sinks."""
        node = self.lca(a, b)
        total = 0.0
        while node >= 0:
            total += float(self.delay[node])
            node = int(self.parent[node])
        return total


def generate_clock_tree(
    sinks: Sequence[int],
    *,
    seed: SeedLike = 0,
    stage_delay: float = 20.0,
) -> ClockTree:
    """Build a balanced binary tree over *sinks* with jittered delays."""
    sinks = list(sinks)
    if not sinks:
        raise ValueError("clock tree needs at least one sink")
    rng = seeded_rng(seed)

    # build bottom-up: level 0 = leaves, pair up until a single root
    parent: List[int] = []
    delay: List[float] = []
    depth: List[int] = []

    current = []
    leaf_of: Dict[int, int] = {}
    for s in sinks:
        nid = len(parent)
        parent.append(-1)
        delay.append(float(stage_delay * rng.uniform(0.8, 1.2)))
        depth.append(0)
        leaf_of[s] = nid
        current.append(nid)

    while len(current) > 1:
        nxt = []
        for i in range(0, len(current), 2):
            group = current[i : i + 2]
            nid = len(parent)
            parent.append(-1)
            delay.append(float(stage_delay * rng.uniform(0.8, 1.2)))
            depth.append(0)
            for child in group:
                parent[child] = nid
            nxt.append(nid)
        current = nxt

    # root depth 0, growing downward
    parent_arr = np.asarray(parent, dtype=np.int64)
    depth_arr = np.zeros(len(parent), dtype=np.int64)
    # compute depth via repeated passes (tree height ~ log2 sinks)
    changed = True
    while changed:
        changed = False
        for i in range(len(parent)):
            p = parent_arr[i]
            if p >= 0 and depth_arr[i] != depth_arr[p] + 1:
                depth_arr[i] = depth_arr[p] + 1
                changed = True

    return ClockTree(
        parent=parent_arr,
        delay=np.asarray(delay, dtype=np.float64),
        leaf_of=leaf_of,
        depth=depth_arr,
    )


def cppr_credit(
    tree: ClockTree,
    launch: int,
    capture: int,
    *,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> float:
    """Pessimism credit for the (launch, capture) pair.

    Zero when the pair shares no clock segment beyond the root's entry
    or when derates are symmetric-equal; otherwise positive.
    """
    if late_derate < early_derate:
        raise ValueError("late derate must be >= early derate")
    common = tree.common_path_delay(launch, capture)
    return (late_derate - early_derate) * common


def cppr_credits_for_pairs(
    tree: ClockTree,
    pairs: Sequence[Tuple[int, int]],
    **kw: float,
) -> np.ndarray:
    """Vector of credits for many (launch, capture) pairs."""
    return np.asarray([cppr_credit(tree, a, b, **kw) for a, b in pairs])


def setup_slack_with_cppr(
    tree: ClockTree,
    clock_period: float,
    launch: int,
    capture: int,
    data_arrival: float,
    *,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> Tuple[float, float]:
    """Corner-based setup check for one (launch, capture) flop pair.

    Pessimistic model: the launch clock path is derated *late* (data
    leaves as late as possible) while the capture clock path is derated
    *early* (the capturing edge arrives as early as possible)::

        slack = period + early*capture_latency
                - (late*launch_latency + data_arrival)

    CPPR then credits back the shared clock segment, which cannot be
    simultaneously early and late.  Returns
    ``(pessimistic_slack, cppr_corrected_slack)``; the corrected slack
    is never smaller (CPPR only removes pessimism).
    """
    launch_latency = tree.insertion_delay(launch)
    capture_latency = tree.insertion_delay(capture)
    pessimistic = (
        clock_period
        + early_derate * capture_latency
        - (late_derate * launch_latency + data_arrival)
    )
    credit = cppr_credit(
        tree, launch, capture, early_derate=early_derate, late_derate=late_derate
    )
    return pessimistic, pessimistic + credit
