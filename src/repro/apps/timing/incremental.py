"""Incremental static timing analysis (OpenTimer-2.0 style).

The paper's timing experiment builds on OpenTimer 2.0, whose defining
capability is *incremental* timing: after a local design change (an arc
delay update from re-sizing a gate, re-routing a net, ...), only the
affected cone is re-propagated instead of the whole graph.

:class:`IncrementalTimer` keeps arrival and required times consistent
under :meth:`update_arc_delay` edits with lazy, level-ordered
repropagation:

- a delay edit dirties the arc's endpoints;
- on query (or explicit :meth:`update_timing`), dirty nodes are
  re-evaluated from their incident arcs in level order; a node whose
  value actually changed dirties its neighbours downstream (arrival)
  or upstream (required);
- repropagation therefore touches exactly the changed cone — the
  number of re-evaluated nodes is reported for testing/benchmarking.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.sta import StaResult, run_sta
from repro.apps.timing.views import View

_EPS = 1e-12


def for_sequential_design(
    design,
    clock_period: float,
    view: Optional[View] = None,
    *,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> "IncrementalTimer":
    """An :class:`IncrementalTimer` over a reg-to-reg design.

    Installs the launch (late clock latency + clk->q) and capture
    (period + early latency - setup) boundary conditions of
    :func:`~repro.apps.timing.sequential.analyze_sequential`, so
    incremental edits maintain *sequential* slacks.
    """
    graph = design.graph
    tree = design.tree
    sources = np.zeros(graph.num_nodes)
    for pi, flop in design.launch_flop_of.items():
        sources[pi] = late_derate * tree.insertion_delay(flop) + design.clk_to_q
    endpoint_required = np.asarray(
        [
            clock_period
            + early_derate * tree.insertion_delay(design.capture_flop_of[int(ep)])
            - design.setup
            for ep in graph.outputs
        ]
    )
    return IncrementalTimer(
        graph,
        view,
        clock_period=clock_period,
        source_arrivals=sources,
        endpoint_required=endpoint_required,
    )


class IncrementalTimer:
    """Maintains arrival/required/slack under arc-delay edits."""

    def __init__(
        self,
        graph: TimingGraph,
        view: Optional[View] = None,
        clock_period: Optional[float] = None,
        *,
        source_arrivals: Optional[np.ndarray] = None,
        endpoint_required: Optional[np.ndarray] = None,
    ) -> None:
        """*source_arrivals*/*endpoint_required* install the same
        boundary conditions :func:`~repro.apps.timing.sta.run_sta`
        accepts, so the timer can maintain register-to-register timing
        (see :func:`for_sequential_design`)."""
        self.graph = graph
        self.view = view
        base = run_sta(
            graph,
            view,
            clock_period,
            source_arrivals=source_arrivals,
            endpoint_required=endpoint_required,
        )
        self.clock_period = base.clock_period
        self.arrival = base.arrival.copy()
        self.required = base.required.copy()
        self._source_arrival = np.zeros(graph.num_nodes)
        if source_arrivals is not None:
            self._source_arrival[:] = source_arrivals
        self._required_at_endpoint = np.full(graph.num_nodes, np.nan)
        if endpoint_required is not None:
            self._required_at_endpoint[graph.outputs] = endpoint_required
        else:
            self._required_at_endpoint[graph.outputs] = self.clock_period
        #: current (possibly edited) derated arc delays
        self.delays = graph.arc_delay.copy()
        if view is not None:
            self.delays *= view.derates(graph.num_arcs)

        # fanin/fanout CSR over arcs for cone walks
        self._fanin_ptr, self._fanin_arcs = self._csr(graph.arc_dst)
        self._fanout_ptr, self._fanout_arcs = self._csr(graph.arc_src)
        self._is_output = np.zeros(graph.num_nodes, dtype=bool)
        self._is_output[graph.outputs] = True

        self._dirty_fwd: Set[int] = set()
        self._dirty_bwd: Set[int] = set()
        #: nodes re-evaluated by the last propagation (for tests/benches)
        self.last_propagation_count = 0
        #: cumulative re-evaluations since construction
        self.total_propagations = 0

    def _csr(self, key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        order = np.argsort(key, kind="stable")
        counts = np.zeros(self.graph.num_nodes + 1, dtype=np.int64)
        np.add.at(counts[1:], key, 1)
        return np.cumsum(counts), order

    def _fanin_of(self, node: int) -> np.ndarray:
        return self._fanin_arcs[self._fanin_ptr[node] : self._fanin_ptr[node + 1]]

    def _fanout_of(self, node: int) -> np.ndarray:
        return self._fanout_arcs[self._fanout_ptr[node] : self._fanout_ptr[node + 1]]

    # -- edits -------------------------------------------------------
    def update_arc_delay(self, arc: int, new_delay: float) -> None:
        """Set arc *arc* to *new_delay* (already-derated value).

        Lazy: timing is re-propagated on the next query.
        """
        if not 0 <= arc < self.graph.num_arcs:
            raise IndexError(f"arc {arc} out of range")
        if new_delay < 0:
            raise ValueError("arc delays must be non-negative")
        if abs(self.delays[arc] - new_delay) <= _EPS:
            return
        self.delays[arc] = new_delay
        self._dirty_fwd.add(int(self.graph.arc_dst[arc]))
        self._dirty_bwd.add(int(self.graph.arc_src[arc]))

    def scale_arc_delay(self, arc: int, factor: float) -> None:
        """Multiplicative edit (gate re-sizing idiom)."""
        self.update_arc_delay(arc, float(self.delays[arc]) * factor)

    # -- queries -------------------------------------------------------
    def arrival_of(self, node: int) -> float:
        self.update_timing()
        return float(self.arrival[node])

    def required_of(self, node: int) -> float:
        self.update_timing()
        return float(self.required[node])

    def slack_of(self, node: int) -> float:
        self.update_timing()
        return float(self.required[node] - self.arrival[node])

    @property
    def wns(self) -> float:
        self.update_timing()
        return float((self.required - self.arrival).min())

    def snapshot(self) -> StaResult:
        """A full :class:`StaResult` view of the current state."""
        self.update_timing()
        # rebuild critical arcs for the current delays (cheap pass)
        critical = np.full(self.graph.num_nodes, -1, dtype=np.int64)
        for node in range(self.graph.num_nodes):
            arcs = self._fanin_of(node)
            if arcs.size:
                cand = self.arrival[self.graph.arc_src[arcs]] + self.delays[arcs]
                critical[node] = arcs[int(np.argmax(cand))]
        return StaResult(
            view=self.view,
            clock_period=self.clock_period,
            arrival=self.arrival.copy(),
            required=self.required.copy(),
            critical_arc=critical,
        )

    # -- propagation -------------------------------------------------
    def update_timing(self) -> int:
        """Re-propagate dirty cones; returns nodes re-evaluated."""
        count = 0
        count += self._propagate_forward()
        count += self._propagate_backward()
        self.last_propagation_count = count
        self.total_propagations += count
        return count

    def _eval_arrival(self, node: int) -> float:
        arcs = self._fanin_of(node)
        if arcs.size == 0:
            return float(self._source_arrival[node])
        src = self.graph.arc_src[arcs]
        return float((self.arrival[src] + self.delays[arcs]).max())

    def _eval_required(self, node: int) -> float:
        arcs = self._fanout_of(node)
        best = (
            float(self._required_at_endpoint[node]) if self._is_output[node] else np.inf
        )
        if arcs.size:
            dst = self.graph.arc_dst[arcs]
            best = min(best, float((self.required[dst] - self.delays[arcs]).min()))
        if not np.isfinite(best):
            best = self.clock_period
        return best

    def _propagate_forward(self) -> int:
        if not self._dirty_fwd:
            return 0
        level = self.graph.level_of
        heap = [(int(level[n]), n) for n in self._dirty_fwd]
        heapq.heapify(heap)
        queued = set(self._dirty_fwd)
        self._dirty_fwd.clear()
        count = 0
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            count += 1
            new = self._eval_arrival(node)
            if abs(new - self.arrival[node]) <= _EPS:
                continue
            self.arrival[node] = new
            for arc in self._fanout_of(node):
                succ = int(self.graph.arc_dst[arc])
                if succ not in queued:
                    queued.add(succ)
                    heapq.heappush(heap, (int(level[succ]), succ))
        return count

    def _propagate_backward(self) -> int:
        if not self._dirty_bwd:
            return 0
        level = self.graph.level_of
        heap = [(-int(level[n]), n) for n in self._dirty_bwd]
        heapq.heapify(heap)
        queued = set(self._dirty_bwd)
        self._dirty_bwd.clear()
        count = 0
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            count += 1
            new = self._eval_required(node)
            if abs(new - self.required[node]) <= _EPS:
                continue
            self.required[node] = new
            for arc in self._fanin_of(node):
                pred = int(self.graph.arc_src[arc])
                if pred not in queued:
                    queued.add(pred)
                    heapq.heappush(heap, (-int(level[pred]), pred))
        return count
