"""Critical path extraction.

The correlation layer's CPU stage extracts the k worst paths per view
(paper cites [27], [28]).  We trace each endpoint's critical path
through the ``critical_arc`` tree recorded by the forward STA pass and
return the *k* endpoints with the worst slack — the practical
single-path-per-endpoint variant used in regression feature pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.sta import StaResult


@dataclass
class Path:
    """One timing path from a startpoint to an endpoint."""

    endpoint: int
    slack: float
    arrival: float
    nodes: List[int]

    @property
    def num_stages(self) -> int:
        return len(self.nodes) - 1

    @property
    def startpoint(self) -> int:
        return self.nodes[0]


def trace_critical_path(graph: TimingGraph, sta: StaResult, endpoint: int) -> Path:
    """Walk the critical-arc tree from *endpoint* back to a startpoint."""
    nodes = [int(endpoint)]
    cur = int(endpoint)
    guard = 0
    while True:
        arc = int(sta.critical_arc[cur])
        if arc < 0:
            break
        cur = int(graph.arc_src[arc])
        nodes.append(cur)
        guard += 1
        if guard > graph.num_nodes:
            raise RuntimeError("critical-arc tree contains a cycle")
    nodes.reverse()
    return Path(
        endpoint=int(endpoint),
        slack=float(sta.slack[endpoint]),
        arrival=float(sta.arrival[endpoint]),
        nodes=nodes,
    )


def k_worst_paths(graph: TimingGraph, sta: StaResult, k: int) -> List[Path]:
    """The *k* endpoints with the worst slack, each with its critical path.

    Sorted ascending by slack (worst first); ties broken by endpoint id
    for determinism.
    """
    if k < 1:
        return []
    slacks = sta.endpoint_slacks(graph)
    order = np.lexsort((graph.outputs, slacks))
    picked = graph.outputs[order[: min(k, order.size)]]
    return [trace_critical_path(graph, sta, int(e)) for e in picked]
