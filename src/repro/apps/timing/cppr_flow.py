"""Heterogeneous CPPR: batched pessimism credits on the GPU.

The paper cites HeteroCPPR [31] ("Accelerating Common Path Pessimism
Removal with Heterogeneous CPU-GPU Parallelism"): CPPR's per-endpoint
work — finding the launch/capture LCA in the clock tree and crediting
the common-path delay — is embarrassingly parallel over endpoints and
maps naturally onto a GPU batch.

This module provides:

- :func:`cppr_batch_kernel` — a device kernel computing credits for a
  whole batch of (launch, capture) flop pairs via vectorized LCA
  pointer-walks over flattened tree arrays;
- :func:`flatten_tree` — the host-side preparation (parent/depth
  arrays plus root-to-node accumulated delay);
- :func:`build_cppr_flow` — the Heteroflow graph: a host task runs the
  sequential STA and extracts the endpoint pairs, pulls ship the tree
  and pairs to a GPU, the batch kernel computes credits, a push +
  host task fold the corrected slacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.apps.timing.cppr import ClockTree
from repro.apps.timing.paths import trace_critical_path
from repro.apps.timing.sequential import SequentialDesign, analyze_sequential
from repro.core.heteroflow import Heteroflow
from repro.sim.cost import CostModel
from repro.utils.span import Late


def flatten_tree(tree: ClockTree):
    """Device-shippable arrays: (parent, depth, acc_delay).

    ``acc_delay[i]`` is the total branch delay from the root down to
    and including node *i* — the common-path delay of a pair is then
    just ``acc_delay[lca]``.
    """
    parent = tree.parent.astype(np.int64)
    depth = tree.depth.astype(np.int64)
    acc = np.zeros(tree.num_nodes, dtype=np.float64)
    # roots first: process nodes in increasing depth so parents are done
    order = np.argsort(depth, kind="stable")
    for node in order:
        p = parent[node]
        acc[node] = tree.delay[node] + (acc[p] if p >= 0 else 0.0)
    return parent, depth, acc


def cppr_batch_kernel(
    ctx,
    n_pairs,
    derate_window,
    parent,
    depth,
    acc,
    leaf_a,
    leaf_b,
    credits,
) -> None:
    """credits[i] = derate_window * acc[LCA(leaf_a[i], leaf_b[i])].

    The LCA search is a vectorized pointer walk: at each round, every
    still-active pair steps its deeper endpoint one level up — exactly
    the per-thread loop of the CUDA implementation, executed across
    the batch at once.
    """
    n = int(n_pairs)
    a = leaf_a[:n].astype(np.int64)
    b = leaf_b[:n].astype(np.int64)
    valid = a >= 0  # sentinel -1: no common path (credit 0)
    a_safe = np.where(valid, a, 0)
    b_safe = np.where(valid, b, 0)
    active = valid & (a_safe != b_safe)
    guard = 0
    while np.any(active):
        da = depth[a_safe]
        db = depth[b_safe]
        step_a = active & (da >= db)
        step_b = active & (db > da)
        a_safe[step_a] = parent[a_safe[step_a]]
        b_safe[step_b] = parent[b_safe[step_b]]
        active = valid & (a_safe != b_safe)
        guard += 1
        if guard > depth.max() * 2 + 4:
            raise RuntimeError("LCA walk did not converge (corrupt tree?)")
    credits[:n] = np.where(valid, float(derate_window) * acc[a_safe], 0.0)


@dataclass
class CpprFlowState:
    """Shared state of a built CPPR flow."""

    graph: Heteroflow
    cost_model: CostModel
    design: SequentialDesign
    clock_period: float
    early_derate: float
    late_derate: float
    # arrays populated at runtime
    leaf_a: np.ndarray = field(default=None)  # type: ignore[assignment]
    leaf_b: np.ndarray = field(default=None)  # type: ignore[assignment]
    credits: np.ndarray = field(default=None)  # type: ignore[assignment]
    slack_pessimistic: np.ndarray = field(default=None)  # type: ignore[assignment]
    slack_cppr: np.ndarray = field(default=None)  # type: ignore[assignment]
    n_pairs: int = 0
    report: Dict[str, float] = field(default_factory=dict)


def build_cppr_flow(
    design: SequentialDesign,
    clock_period: float,
    *,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> CpprFlowState:
    """Build the heterogeneous CPPR graph over *design*."""
    hf = Heteroflow("hetero-cppr")
    cm = CostModel()
    n_endpoints = int(design.graph.outputs.size)
    parent, depth, acc = flatten_tree(design.tree)

    state = CpprFlowState(
        graph=hf,
        cost_model=cm,
        design=design,
        clock_period=clock_period,
        early_derate=early_derate,
        late_derate=late_derate,
        leaf_a=np.zeros(n_endpoints, dtype=np.int64),
        leaf_b=np.zeros(n_endpoints, dtype=np.int64),
        credits=np.zeros(n_endpoints, dtype=np.float64),
        slack_pessimistic=np.zeros(n_endpoints, dtype=np.float64),
    )

    def extract_pairs() -> None:
        # CPU stage: sequential STA + critical startpoint per endpoint
        res = analyze_sequential(
            design,
            clock_period,
            early_derate=early_derate,
            late_derate=late_derate,
        )
        tree = design.tree
        for i, ep in enumerate(res.endpoints):
            launch = int(res.launch_of_endpoint[i])
            capture = design.capture_flop_of[int(ep)]
            # sentinel -1 encodes "path launches from a non-flop
            # source": no common clock segment, zero credit
            state.leaf_a[i] = tree.leaf_of[launch] if launch >= 0 else -1
            state.leaf_b[i] = tree.leaf_of[capture]
        state.slack_pessimistic[:] = res.slack_pessimistic
        state.n_pairs = len(res.endpoints)

    def finalize() -> None:
        state.slack_cppr = state.slack_pessimistic + state.credits
        state.report = {
            "wns_pessimistic": float(state.slack_pessimistic.min(initial=np.inf)),
            "wns_cppr": float(state.slack_cppr.min(initial=np.inf)),
            "total_credit": float(state.credits.sum()),
            "endpoints": float(state.n_pairs),
        }

    extract = hf.host(extract_pairs, name="extract_pairs")
    pull_parent = hf.pull(parent, name="pull_parent")
    pull_depth = hf.pull(depth, name="pull_depth")
    pull_acc = hf.pull(acc, name="pull_acc")
    pull_a = hf.pull(state.leaf_a, name="pull_leaf_a")
    pull_b = hf.pull(state.leaf_b, name="pull_leaf_b")
    pull_credits = hf.pull(state.credits, name="pull_credits")
    kernel = hf.kernel(
        cppr_batch_kernel,
        Late(lambda: state.n_pairs),
        late_derate - early_derate,
        pull_parent,
        pull_depth,
        pull_acc,
        pull_a,
        pull_b,
        pull_credits,
        name="cppr_batch",
    ).block_x(256).grid_x(max((n_endpoints + 255) // 256, 1))
    push_credits = hf.push(pull_credits, state.credits, name="push_credits")
    fold = hf.host(finalize, name="finalize")

    extract.precede(pull_a, pull_b, pull_credits)
    kernel.succeed(pull_parent, pull_depth, pull_acc, pull_a, pull_b, pull_credits)
    kernel.precede(push_credits)
    push_credits.precede(fold)

    # paper-scale-ish cost annotations (1.5M endpoints would dominate)
    cm.annotate_host(extract, 2.0)
    cm.annotate_kernel(kernel, 0.2)
    cm.annotate_host(fold, 0.1)
    for p in (pull_parent, pull_depth, pull_acc):
        cm.annotate_copy(p, acc.nbytes)
    for p in (pull_a, pull_b, pull_credits, push_credits):
        cm.annotate_copy(p, state.credits.nbytes)
    return state


def _root_of(tree: ClockTree) -> int:
    node = next(iter(tree.leaf_of.values()))
    while tree.parent[node] >= 0:
        node = int(tree.parent[node])
    return node


def reference_credits(state: CpprFlowState) -> np.ndarray:
    """Host-only oracle using the scalar per-pair CPPR implementation."""
    res = analyze_sequential(
        state.design,
        state.clock_period,
        early_derate=state.early_derate,
        late_derate=state.late_derate,
    )
    return res.slack_cppr - res.slack_pessimistic
