"""Register-to-register timing with path-based CPPR.

Combinational STA treats primary inputs as time-zero sources and
outputs as period-bounded sinks.  Real designs are *sequential*: data
launches from a flip-flop on a clock edge (launch-clock latency +
clk->q delay), travels through combinational logic, and must arrive at
the capturing flop a setup time before the next edge (period +
capture-clock latency - setup).

Corner analysis derates the launch path *late* and the capture path
*early*; the clock-tree segment common to a specific (launch, capture)
pair cannot be both, so CPPR credits it back — and the credit is
**path-specific**: it depends on which launch flop dominates each
endpoint's arrival.  This module implements that full flow on top of
:func:`~repro.apps.timing.sta.run_sta`'s boundary-condition hooks and
the :mod:`~repro.apps.timing.cppr` clock-tree machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.timing.cppr import ClockTree, cppr_credit, generate_clock_tree
from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.netlist import Netlist
from repro.apps.timing.paths import trace_critical_path
from repro.apps.timing.sta import StaResult, run_sta
from repro.apps.timing.views import View
from repro.utils.rng import derive_seed

#: default flop characteristics (picoseconds)
DEFAULT_CLK_TO_Q = 35.0
DEFAULT_SETUP = 25.0


@dataclass
class SequentialDesign:
    """A combinational core with flops at its boundary.

    Launch flops drive the primary inputs; capture flops sit at the
    endpoints.  One clock tree spans all flops (launchers first, then
    capturers, by sink id).
    """

    netlist: Netlist
    graph: TimingGraph
    tree: ClockTree
    #: PI node id -> launch flop sink id in the clock tree
    launch_flop_of: Dict[int, int]
    #: endpoint node id -> capture flop sink id
    capture_flop_of: Dict[int, int]
    clk_to_q: float = DEFAULT_CLK_TO_Q
    setup: float = DEFAULT_SETUP

    @property
    def num_flops(self) -> int:
        return len(self.launch_flop_of) + len(self.capture_flop_of)


def build_sequential_design(
    netlist: Netlist,
    *,
    seed: int = 0,
    clk_to_q: float = DEFAULT_CLK_TO_Q,
    setup: float = DEFAULT_SETUP,
) -> SequentialDesign:
    """Wrap *netlist* with boundary flops and a spanning clock tree."""
    graph = TimingGraph.from_netlist(netlist)
    launch_ids = list(range(netlist.num_inputs))
    capture_ids = [int(o) for o in graph.outputs]
    # one shared clock tree over every flop; sink ids are node ids,
    # unique because PIs and endpoints are disjoint node sets
    tree = generate_clock_tree(
        launch_ids + capture_ids, seed=derive_seed(seed, "clock-tree")
    )
    return SequentialDesign(
        netlist=netlist,
        graph=graph,
        tree=tree,
        launch_flop_of={pi: pi for pi in launch_ids},
        capture_flop_of={ep: ep for ep in capture_ids},
        clk_to_q=clk_to_q,
        setup=setup,
    )


@dataclass
class SequentialResult:
    """Per-endpoint reg-to-reg timing with and without CPPR."""

    design: SequentialDesign
    clock_period: float
    sta: StaResult
    endpoints: np.ndarray
    #: dominant launch flop per endpoint (critical-path startpoint)
    launch_of_endpoint: np.ndarray
    slack_pessimistic: np.ndarray
    slack_cppr: np.ndarray

    @property
    def wns_pessimistic(self) -> float:
        return float(self.slack_pessimistic.min(initial=np.inf))

    @property
    def wns_cppr(self) -> float:
        return float(self.slack_cppr.min(initial=np.inf))

    @property
    def total_credit(self) -> float:
        return float((self.slack_cppr - self.slack_pessimistic).sum())

    def recovered_violations(self) -> int:
        """Endpoints failing pessimistically but passing after CPPR —
        the false violations pessimism removal exists to eliminate."""
        return int(np.sum((self.slack_pessimistic < 0) & (self.slack_cppr >= 0)))


def analyze_sequential(
    design: SequentialDesign,
    clock_period: Optional[float] = None,
    view: Optional[View] = None,
    *,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> SequentialResult:
    """Full reg-to-reg setup analysis with path-based CPPR."""
    if late_derate < early_derate:
        raise ValueError("late derate must be >= early derate")
    graph = design.graph
    tree = design.tree

    # launch boundary condition: late clock latency + clk->q at PIs
    sources = np.zeros(graph.num_nodes)
    for pi, flop in design.launch_flop_of.items():
        sources[pi] = late_derate * tree.insertion_delay(flop) + design.clk_to_q

    # provisional period if unset: 90% of the smallest period at which
    # every endpoint would (pessimistically) just meet timing, so a
    # realistic fraction of endpoints fail
    sta0 = run_sta(graph, view, clock_period=1.0, source_arrivals=sources)
    if clock_period is None:
        needs = [
            float(sta0.arrival[ep])
            + design.setup
            - early_derate * tree.insertion_delay(design.capture_flop_of[int(ep)])
            for ep in graph.outputs
        ]
        clock_period = 0.9 * max(needs)

    # capture boundary condition per endpoint
    endpoint_required = np.empty(graph.outputs.size)
    for i, ep in enumerate(graph.outputs):
        flop = design.capture_flop_of[int(ep)]
        endpoint_required[i] = (
            clock_period
            + early_derate * tree.insertion_delay(flop)
            - design.setup
        )
    sta = run_sta(
        graph,
        view,
        clock_period=clock_period,
        source_arrivals=sources,
        endpoint_required=endpoint_required,
    )

    # path-based CPPR: per endpoint, find the dominant launch flop via
    # the critical-path startpoint and credit the shared clock segment
    launches = np.empty(graph.outputs.size, dtype=np.int64)
    pess = np.empty(graph.outputs.size)
    cppr = np.empty(graph.outputs.size)
    for i, ep in enumerate(graph.outputs):
        path = trace_critical_path(graph, sta, int(ep))
        start = path.startpoint
        launch_flop = design.launch_flop_of.get(start, -1)
        launches[i] = launch_flop
        slack = endpoint_required[i] - sta.arrival[ep]
        pess[i] = slack
        if launch_flop >= 0:
            credit = cppr_credit(
                tree,
                launch_flop,
                design.capture_flop_of[int(ep)],
                early_derate=early_derate,
                late_derate=late_derate,
            )
        else:
            credit = 0.0  # path starts at a non-flop source
        cppr[i] = slack + credit

    return SequentialResult(
        design=design,
        clock_period=float(clock_period),
        sta=sta,
        endpoints=graph.outputs.copy(),
        launch_of_endpoint=launches,
        slack_pessimistic=pess,
        slack_cppr=cppr,
    )


#: default hold requirement (picoseconds)
DEFAULT_HOLD = 8.0


@dataclass
class HoldResult:
    """Per-endpoint hold-check slacks (same-cycle race analysis)."""

    design: SequentialDesign
    endpoints: np.ndarray
    launch_of_endpoint: np.ndarray
    slack_pessimistic: np.ndarray
    slack_cppr: np.ndarray

    @property
    def whs_pessimistic(self) -> float:
        """Worst hold slack before pessimism removal."""
        return float(self.slack_pessimistic.min(initial=np.inf))

    @property
    def whs_cppr(self) -> float:
        return float(self.slack_cppr.min(initial=np.inf))

    def recovered_violations(self) -> int:
        return int(np.sum((self.slack_pessimistic < 0) & (self.slack_cppr >= 0)))


def analyze_hold(
    design: SequentialDesign,
    view: Optional[View] = None,
    *,
    hold: float = DEFAULT_HOLD,
    early_derate: float = 0.95,
    late_derate: float = 1.05,
) -> HoldResult:
    """Hold (min-delay) analysis: the race the *fast* paths can lose.

    Hold pessimism is the mirror image of setup pessimism: the launch
    clock is derated *early* (data leaves as soon as possible) and the
    capture clock *late* (the same-cycle capturing edge lingers)::

        slack = early*launch_latency + clk->q + min_path
                - (late*capture_latency + hold)

    CPPR credits the shared clock segment's derate window exactly as
    for setup.  The dominant launch flop per endpoint is found with a
    min-plus backtrace (the earliest path's startpoint).
    """
    if late_derate < early_derate:
        raise ValueError("late derate must be >= early derate")
    from repro.apps.timing.sta import min_arrivals

    graph = design.graph
    tree = design.tree
    sources = np.zeros(graph.num_nodes)
    for pi, flop in design.launch_flop_of.items():
        sources[pi] = early_derate * tree.insertion_delay(flop) + design.clk_to_q
    early = min_arrivals(graph, view, source_arrivals=sources)

    delays = graph.arc_delay
    if view is not None:
        delays = delays * view.derates(graph.num_arcs)

    launches = np.empty(graph.outputs.size, dtype=np.int64)
    pess = np.empty(graph.outputs.size)
    cppr = np.empty(graph.outputs.size)
    for i, ep in enumerate(graph.outputs):
        # min-plus backtrace to the earliest startpoint
        node = int(ep)
        guard = 0
        while True:
            arcs = np.nonzero(graph.arc_dst == node)[0]
            if arcs.size == 0:
                break
            srcs = graph.arc_src[arcs]
            cand = early[srcs] + delays[arcs]
            node = int(srcs[int(np.argmin(cand))])
            guard += 1
            if guard > graph.num_nodes:  # pragma: no cover
                raise RuntimeError("min-path backtrace cycled")
        launch_flop = design.launch_flop_of.get(node, -1)
        launches[i] = launch_flop
        capture = design.capture_flop_of[int(ep)]
        slack = float(early[ep]) - (
            late_derate * tree.insertion_delay(capture) + hold
        )
        pess[i] = slack
        if launch_flop >= 0:
            credit = cppr_credit(
                tree,
                launch_flop,
                capture,
                early_derate=early_derate,
                late_derate=late_derate,
            )
        else:
            credit = 0.0
        cppr[i] = slack + credit
    return HoldResult(
        design=design,
        endpoints=graph.outputs.copy(),
        launch_of_endpoint=launches,
        slack_pessimistic=pess,
        slack_cppr=cppr,
    )


def min_feasible_period(
    design: SequentialDesign,
    view: Optional[View] = None,
    *,
    use_cppr: bool = True,
    tolerance: float = 0.01,
    **derates: float,
) -> float:
    """Binary-search the smallest clock period with non-negative WNS.

    The classic "what frequency can this design run at" query; CPPR
    typically buys a faster feasible clock.
    """
    lo, hi = 0.0, 1.0
    # grow hi until feasible
    for _ in range(60):
        res = analyze_sequential(design, hi, view, **derates)
        wns = res.wns_cppr if use_cppr else res.wns_pessimistic
        if wns >= 0:
            break
        lo = hi
        hi *= 2
    else:  # pragma: no cover - pathological design
        raise RuntimeError("could not bound the feasible period")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        res = analyze_sequential(design, mid, view, **derates)
        wns = res.wns_cppr if use_cppr else res.wns_pessimistic
        if wns >= 0:
            hi = mid
        else:
            lo = mid
    return hi
