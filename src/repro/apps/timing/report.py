"""Human-readable timing reports (OpenTimer ``report_timing`` style).

Produces the per-path text reports timing engineers read: endpoint,
slack, required/arrival, and the stage-by-stage path walk with
per-stage delay and cumulative arrival — one block per reported path.
"""

from __future__ import annotations

import io
from typing import List, Optional

import numpy as np

from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.paths import Path, k_worst_paths
from repro.apps.timing.sta import StaResult


def _stage_rows(graph: TimingGraph, sta: StaResult, path: Path) -> List[tuple]:
    rows = []
    cumulative = 0.0
    for i, node in enumerate(path.nodes):
        if i == 0:
            delay = 0.0
        else:
            prev = path.nodes[i - 1]
            arcs = np.nonzero((graph.arc_src == prev) & (graph.arc_dst == node))[0]
            delay = float(graph.arc_delay[arcs].max()) if arcs.size else 0.0
            if sta.view is not None:
                derates = sta.view.derates(graph.num_arcs)
                delay = float((graph.arc_delay[arcs] * derates[arcs]).max())
        cumulative += delay
        kind = "PI" if node < graph.num_inputs else "gate"
        rows.append((node, kind, delay, cumulative))
    return rows


def report_path(graph: TimingGraph, sta: StaResult, path: Path) -> str:
    """One path block: header plus the stage walk."""
    out = io.StringIO()
    status = "VIOLATED" if path.slack < 0 else "MET"
    out.write(f"Endpoint    : node {path.endpoint}\n")
    out.write(f"Startpoint  : node {path.startpoint}\n")
    view = sta.view.name if sta.view is not None else "(base)"
    out.write(f"View        : {view}\n")
    out.write(f"Required    : {sta.required[path.endpoint]:12.3f}\n")
    out.write(f"Arrival     : {path.arrival:12.3f}\n")
    out.write(f"Slack       : {path.slack:12.3f}  {status}\n")
    out.write(f"{'node':>8} {'type':>6} {'delay':>10} {'arrival':>10}\n")
    for node, kind, delay, cumulative in _stage_rows(graph, sta, path):
        out.write(f"{node:>8} {kind:>6} {delay:>10.3f} {cumulative:>10.3f}\n")
    return out.getvalue()


def report_timing(
    graph: TimingGraph,
    sta: StaResult,
    k: int = 1,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Report the *k* worst paths (OpenTimer's ``report_timing -num``).

    Returns the text; also writes to *stream* when given.
    """
    paths = k_worst_paths(graph, sta, k)
    out = io.StringIO()
    out.write(f"---- timing report: {len(paths)} path(s), clock {sta.clock_period:.3f} ----\n")
    wns = min((p.slack for p in paths), default=0.0)
    tns = sum(p.slack for p in paths if p.slack < 0)
    out.write(f"WNS {wns:.3f}  TNS {tns:.3f}\n\n")
    for i, p in enumerate(paths, 1):
        out.write(f"# Path {i}\n")
        out.write(report_path(graph, sta, p))
        out.write("\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
