"""The timing graph: a levelized DAG of timing arcs.

STA operates on arcs (driver pin -> sink pin) with delays.  For the
synthetic netlists each gate contributes one node and one arc per
fanin; arc delay = gate intrinsic delay + a wire delay proportional to
the driver's fanout (a simple lumped-C model).  The arc arrays are
stored as flat numpy vectors so whole-graph propagation vectorizes per
level — the idiom the performance guides recommend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.timing.netlist import Netlist

#: wire delay per fanout connection, picoseconds
WIRE_DELAY_PER_FANOUT = 2.5


@dataclass
class TimingGraph:
    """Arc-compressed timing graph.

    Attributes
    ----------
    num_nodes:
        primary inputs + gates (one timing node each).
    arc_src / arc_dst / arc_delay:
        flat arc arrays, sorted by the destination's level so that a
        stable per-level walk is a contiguous slice.
    level_of:
        per-node level (PIs at level 0).
    level_arcs:
        ``level_arcs[l]`` is the (start, end) slice of arcs whose
        destination sits at level ``l``.
    outputs:
        endpoint node ids (primary outputs / flop D-pins).
    """

    num_nodes: int
    num_inputs: int
    arc_src: np.ndarray
    arc_dst: np.ndarray
    arc_delay: np.ndarray
    level_of: np.ndarray
    level_arcs: List[tuple]
    outputs: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.arc_src.size)

    @property
    def depth(self) -> int:
        return int(self.level_of.max(initial=0))

    @classmethod
    def from_netlist(cls, nl: Netlist) -> "TimingGraph":
        """Build the timing graph for *nl* (O(arcs))."""
        num_nodes = nl.num_nodes
        srcs: List[int] = []
        dsts: List[int] = []
        delays: List[float] = []
        level_of = np.zeros(num_nodes, dtype=np.int64)
        fanout = np.zeros(num_nodes, dtype=np.int64)
        for g in nl.gates:
            for f in g.fanin:
                fanout[f] += 1
        for g in nl.gates:
            nid = nl.num_inputs + g.gid
            level_of[nid] = g.level
            for f in g.fanin:
                srcs.append(f)
                dsts.append(nid)
                delays.append(g.delay + WIRE_DELAY_PER_FANOUT * fanout[f])

        arc_src = np.asarray(srcs, dtype=np.int64)
        arc_dst = np.asarray(dsts, dtype=np.int64)
        arc_delay = np.asarray(delays, dtype=np.float64)

        order = np.argsort(level_of[arc_dst], kind="stable")
        arc_src, arc_dst, arc_delay = arc_src[order], arc_dst[order], arc_delay[order]

        depth = int(level_of.max(initial=0))
        dst_levels = level_of[arc_dst]
        level_arcs: List[tuple] = []
        start = 0
        for lvl in range(depth + 1):
            end = int(np.searchsorted(dst_levels, lvl, side="right"))
            level_arcs.append((start, end))
            start = end

        return cls(
            num_nodes=num_nodes,
            num_inputs=nl.num_inputs,
            arc_src=arc_src,
            arc_dst=arc_dst,
            arc_delay=arc_delay,
            level_of=level_of,
            level_arcs=level_arcs,
            outputs=np.asarray(nl.outputs, dtype=np.int64),
        )

    def fanin_arcs_of(self, node: int) -> np.ndarray:
        """Indices of arcs whose destination is *node* (path tracing)."""
        return np.nonzero(self.arc_dst == node)[0]
