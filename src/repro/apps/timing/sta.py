"""Static timing analysis: arrival, required, slack — per view.

Forward pass (max-plus over levelized arcs) computes the latest
arrival time at every node; the backward pass propagates required
times from endpoints against a clock period; slack = required −
arrival.  Both passes are vectorized per level with
``numpy.maximum.at`` / ``minimum.at`` scatter reductions, so the whole
analysis is O(arcs) with no Python-level inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.views import View


@dataclass
class StaResult:
    """Per-node timing quantities for one view."""

    view: Optional[View]
    clock_period: float
    arrival: np.ndarray
    required: np.ndarray
    #: the fanin arc realizing each node's arrival (critical tree)
    critical_arc: np.ndarray

    @property
    def slack(self) -> np.ndarray:
        return self.required - self.arrival

    def endpoint_slacks(self, graph: TimingGraph) -> np.ndarray:
        return self.slack[graph.outputs]

    @property
    def wns(self) -> float:
        """Worst negative slack (min slack over all nodes)."""
        return float(self.slack.min(initial=np.inf))

    def tns(self, graph: TimingGraph) -> float:
        """Total negative slack over endpoints."""
        es = self.endpoint_slacks(graph)
        return float(es[es < 0].sum())


def run_sta(
    graph: TimingGraph,
    view: Optional[View] = None,
    clock_period: Optional[float] = None,
    *,
    source_arrivals: Optional[np.ndarray] = None,
    endpoint_required: Optional[np.ndarray] = None,
) -> StaResult:
    """Run one full forward+backward STA pass for *view*.

    With no view, undereated delays are used.  With no clock period,
    it defaults to 90% of the undereated critical delay so a realistic
    fraction of endpoints fail — regression targets need both classes.

    *source_arrivals* seeds non-zero arrival times at in-degree-0 nodes
    (launch-clock latency + clk->q in sequential analysis);
    *endpoint_required* overrides the per-endpoint required time
    (aligned with ``graph.outputs``) instead of the uniform clock
    period — together they provide the boundary conditions of
    register-to-register timing (:mod:`repro.apps.timing.sequential`).
    """
    delays = graph.arc_delay
    if view is not None:
        delays = delays * view.derates(graph.num_arcs)

    arrival = np.zeros(graph.num_nodes, dtype=np.float64)
    if source_arrivals is not None:
        if source_arrivals.shape != (graph.num_nodes,):
            raise ValueError("source_arrivals must have one entry per node")
        arrival[:] = source_arrivals
    critical_arc = np.full(graph.num_nodes, -1, dtype=np.int64)
    src, dst = graph.arc_src, graph.arc_dst

    # forward: level-by-level max-plus
    for start, end in graph.level_arcs:
        if start == end:
            continue
        s, d = src[start:end], dst[start:end]
        cand = arrival[s] + delays[start:end]
        np.maximum.at(arrival, d, cand)
        # recover which arc realized the max for path tracing
        realized = cand >= arrival[d] - 1e-12
        critical_arc[d[realized]] = np.arange(start, end)[realized]

    if clock_period is None:
        crit = float(arrival.max(initial=0.0))
        clock_period = 0.9 * crit if crit > 0 else 1.0

    # backward: endpoints get the period (or explicit per-endpoint
    # required times), everything else min-plus
    required = np.full(graph.num_nodes, np.inf)
    if endpoint_required is not None:
        if endpoint_required.shape != graph.outputs.shape:
            raise ValueError("endpoint_required must align with graph.outputs")
        required[graph.outputs] = endpoint_required
    else:
        required[graph.outputs] = clock_period
    for start, end in reversed(graph.level_arcs):
        if start == end:
            continue
        s, d = src[start:end], dst[start:end]
        cand = required[d] - delays[start:end]
        np.minimum.at(required, s, cand)
    # nodes with no path to an endpoint keep +inf required; clamp to
    # the period so slack stays finite and non-binding
    unreachable = ~np.isfinite(required)
    required[unreachable] = clock_period

    return StaResult(
        view=view,
        clock_period=float(clock_period),
        arrival=arrival,
        required=required,
        critical_arc=critical_arc,
    )


def min_arrivals(
    graph: TimingGraph,
    view: Optional[View] = None,
    *,
    source_arrivals: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Earliest (min-plus) arrival times — the hold-analysis forward pass.

    Setup checks use the *latest* arrival (max-plus, :func:`run_sta`);
    hold checks need the *earliest* path through each node.  Same
    levelized vectorized walk with ``minimum.at``.
    """
    delays = graph.arc_delay
    if view is not None:
        delays = delays * view.derates(graph.num_arcs)
    arrival = np.zeros(graph.num_nodes, dtype=np.float64)
    if source_arrivals is not None:
        if source_arrivals.shape != (graph.num_nodes,):
            raise ValueError("source_arrivals must have one entry per node")
        arrival[:] = source_arrivals
    src, dst = graph.arc_src, graph.arc_dst
    # nodes with fanin take the min over fanin arcs, not their seed
    has_fanin = np.zeros(graph.num_nodes, dtype=bool)
    has_fanin[dst] = True
    arrival[has_fanin] = np.inf
    for start, end in graph.level_arcs:
        if start == end:
            continue
        s, d = src[start:end], dst[start:end]
        np.minimum.at(arrival, d, arrival[s] + delays[start:end])
    return arrival
