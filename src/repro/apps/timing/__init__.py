"""VLSI timing analysis substrate (OpenTimer-like).

The paper's first experiment runs multi-view timing correlation on the
``netcard`` circuit: a timer generates per-view analysis data, a hybrid
CPU-GPU layer extracts graph statistics (critical paths, CPPR) on CPUs
and fits logistic-regression models on GPUs, and a final step combines
everything into a report (Fig. 5).

This package implements the whole stack from scratch:

- :mod:`~repro.apps.timing.netlist` — synthetic levelized gate-level
  netlist generation at configurable scale;
- :mod:`~repro.apps.timing.graph` — the timing graph (pins and arcs);
- :mod:`~repro.apps.timing.sta` — arrival/required/slack propagation;
- :mod:`~repro.apps.timing.views` — analysis views (corner × mode) and
  the Fig.-4 view-count model;
- :mod:`~repro.apps.timing.paths` — k-worst critical path extraction;
- :mod:`~repro.apps.timing.cppr` — common path pessimism removal;
- :mod:`~repro.apps.timing.regression` — logistic regression with
  gradient descent, written as GPU kernels;
- :mod:`~repro.apps.timing.flow` — the Heteroflow graph of Fig. 5 plus
  the paper-scale cost annotations for the simulator.
"""

from repro.apps.timing.netlist import Netlist, generate_netlist
from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.sta import StaResult, run_sta
from repro.apps.timing.views import View, enumerate_views, views_for_node
from repro.apps.timing.paths import Path, k_worst_paths
from repro.apps.timing.cppr import ClockTree, cppr_credit, generate_clock_tree
from repro.apps.timing.regression import (
    logreg_gd_kernel,
    logreg_predict,
    train_logreg_host,
)
from repro.apps.timing.flow import TimingCorrelationFlow, build_timing_flow
from repro.apps.timing.incremental import IncrementalTimer
from repro.apps.timing.report import report_timing
from repro.apps.timing.sequential import (
    SequentialDesign,
    analyze_sequential,
    build_sequential_design,
    min_feasible_period,
)

__all__ = [
    "ClockTree",
    "IncrementalTimer",
    "Netlist",
    "SequentialDesign",
    "analyze_sequential",
    "build_sequential_design",
    "min_feasible_period",
    "report_timing",
    "Path",
    "StaResult",
    "TimingCorrelationFlow",
    "TimingGraph",
    "View",
    "build_timing_flow",
    "cppr_credit",
    "enumerate_views",
    "generate_clock_tree",
    "generate_netlist",
    "k_worst_paths",
    "logreg_gd_kernel",
    "logreg_predict",
    "run_sta",
    "train_logreg_host",
    "views_for_node",
]
