"""Synthetic gate-level netlist generation.

The paper analyzes ``netcard`` (1.5M gates, 1.5M nets).  We cannot ship
proprietary benchmark circuits, so this generator produces levelized
combinational netlists with the structural properties STA cares about:
bounded fanin, long reconvergent paths, heavy-tailed fanout, and a mix
of gate types with distinct intrinsic delays.  Size is a parameter, so
tests run at hundreds of gates while benchmarks describe million-gate
instances through the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng

#: gate types with (intrinsic delay ps, max fanin)
GATE_LIBRARY: Tuple[Tuple[str, float, int], ...] = (
    ("INV", 9.0, 1),
    ("BUF", 7.0, 1),
    ("NAND2", 12.0, 2),
    ("NOR2", 14.0, 2),
    ("AND2", 15.0, 2),
    ("OR2", 16.0, 2),
    ("XOR2", 22.0, 2),
    ("AOI21", 19.0, 3),
    ("OAI21", 20.0, 3),
)


@dataclass
class Gate:
    """One logic gate instance."""

    gid: int
    cell: str
    delay: float
    fanin: List[int] = field(default_factory=list)  # gate ids / PI ids
    level: int = 0


@dataclass
class Netlist:
    """A levelized combinational netlist.

    Node numbering: primary inputs occupy ids ``0..num_inputs-1``;
    gates occupy ``num_inputs..num_inputs+num_gates-1``.  Every gate's
    fanins have strictly smaller levels, so the gate order is already
    topological.
    """

    name: str
    num_inputs: int
    gates: List[Gate]
    outputs: List[int]
    seed: int

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nodes(self) -> int:
        return self.num_inputs + len(self.gates)

    @property
    def num_nets(self) -> int:
        """One net per driver (PI or gate) that has at least one sink."""
        drivers = set()
        for g in self.gates:
            drivers.update(g.fanin)
        return len(drivers)

    @property
    def depth(self) -> int:
        return max((g.level for g in self.gates), default=0)

    def node_level(self, node: int) -> int:
        if node < self.num_inputs:
            return 0
        return self.gates[node - self.num_inputs].level

    def validate(self) -> None:
        """Structural sanity: topological fanins, outputs in range."""
        for g in self.gates:
            gid_abs = self.num_inputs + g.gid
            for f in g.fanin:
                if not 0 <= f < gid_abs:
                    raise ValueError(f"gate {g.gid} has non-topological fanin {f}")
        for o in self.outputs:
            if not 0 <= o < self.num_nodes:
                raise ValueError(f"output {o} out of range")


def generate_netlist(
    num_gates: int,
    num_inputs: int = 0,
    *,
    name: str = "synth",
    seed: SeedLike = 0,
    output_fraction: float = 0.1,
) -> Netlist:
    """Generate a levelized netlist of *num_gates* gates.

    Fanins are drawn with a locality bias (recent gates are likelier
    drivers), which yields logarithmic depth growth and heavy-tailed
    fanout — the structure real netlists exhibit.
    """
    if num_gates < 1:
        raise ValueError("need at least one gate")
    rng = seeded_rng(seed)
    if num_inputs <= 0:
        num_inputs = max(4, num_gates // 8)

    lib_delays = np.array([g[1] for g in GATE_LIBRARY])
    lib_fanin = np.array([g[2] for g in GATE_LIBRARY])
    cell_choices = rng.integers(0, len(GATE_LIBRARY), size=num_gates)

    gates: List[Gate] = []
    levels = np.zeros(num_inputs + num_gates, dtype=np.int64)
    fanout_count = np.zeros(num_inputs + num_gates, dtype=np.int64)

    for gid in range(num_gates):
        cell_idx = int(cell_choices[gid])
        cell, delay, max_fanin = GATE_LIBRARY[cell_idx]
        nid = num_inputs + gid
        n_avail = nid
        k = int(min(max_fanin, n_avail))
        # locality bias: candidates drawn from an exponential window
        # ending at the newest node, so paths lengthen steadily
        window = max(8, int(n_avail * 0.25))
        lo = max(0, n_avail - window)
        fanin = rng.choice(np.arange(lo, n_avail), size=k, replace=False)
        # jitter the intrinsic delay per instance (process spread)
        inst_delay = float(delay * rng.uniform(0.9, 1.1))
        g = Gate(gid=gid, cell=cell, delay=inst_delay, fanin=[int(f) for f in fanin])
        g.level = int(levels[list(fanin)].max(initial=0)) + 1 if len(fanin) else 1
        levels[nid] = g.level
        fanout_count[list(fanin)] += 1
        gates.append(g)

    # outputs: dead-end gates plus a random sample of deep gates
    sinks = [num_inputs + g.gid for g in gates if fanout_count[num_inputs + g.gid] == 0]
    extra = max(1, int(num_gates * output_fraction) - len(sinks))
    if extra > 0:
        deep = sorted(gates, key=lambda g: -g.level)[:extra]
        sinks.extend(num_inputs + g.gid for g in deep)
    outputs = sorted(set(sinks))

    nl = Netlist(
        name=name,
        num_inputs=num_inputs,
        gates=gates,
        outputs=outputs,
        seed=int(seed) if isinstance(seed, (int, np.integer)) else 0,
    )
    nl.validate()
    return nl


def netcard_like(scale: float = 1.0, seed: SeedLike = 7) -> Netlist:
    """A scaled stand-in for the paper's netcard (1.5M gates at 1.0).

    ``scale`` shrinks the instance for functional runs; the cost model
    covers the extrapolation to full size.
    """
    gates = max(int(1_500_000 * scale), 16)
    return generate_netlist(gates, name=f"netcard@{scale:g}", seed=seed)
