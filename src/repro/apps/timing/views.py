"""Analysis views: process corners × analysis modes, and the Fig-4 model.

A *view* is one combination of a process-variation corner (voltage,
temperature, process skew) and an analysis mode (functional, test, ...)
— §IV-A.  Each view derates arc delays multiplicatively; the per-view
derate vector is what makes views differ and is the raw material for
the correlation study.

Figure 4 of the paper shows the required number of views growing
exponentially as the technology node shrinks; :func:`views_for_node`
reproduces that curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.utils.rng import derive_seed, seeded_rng

#: canonical corner axes: (voltage scaling, temperature scaling)
_CORNER_KINDS = ("ss", "tt", "ff")
_MODE_KINDS = ("func", "test", "scan", "sleep")

#: Fig. 4: technology node (nm) -> required corners, modes.  The
#: product (views) grows roughly 2x per node — "exponentially as the
#: technology node advances".
FIG4_NODES: Dict[int, Dict[str, int]] = {
    180: {"corners": 2, "modes": 2},
    130: {"corners": 4, "modes": 2},
    90: {"corners": 4, "modes": 4},
    65: {"corners": 8, "modes": 4},
    40: {"corners": 16, "modes": 6},
    28: {"corners": 32, "modes": 8},
    20: {"corners": 64, "modes": 12},
    14: {"corners": 96, "modes": 16},
    10: {"corners": 128, "modes": 24},
    7: {"corners": 192, "modes": 32},
}


def views_for_node(node_nm: int) -> int:
    """Required analysis views for a technology node (Fig. 4 model)."""
    if node_nm not in FIG4_NODES:
        raise ValueError(f"unknown technology node {node_nm}nm")
    spec = FIG4_NODES[node_nm]
    return spec["corners"] * spec["modes"]


@dataclass(frozen=True)
class View:
    """One (corner, mode) analysis view."""

    index: int
    corner: str
    mode: str
    #: global delay scale for the view (slow corners > 1)
    delay_scale: float
    #: seed for per-arc random derates
    seed: int

    @property
    def name(self) -> str:
        return f"{self.corner}_{self.mode}_{self.index}"

    def derates(self, num_arcs: int, spread: float = 0.08) -> np.ndarray:
        """Per-arc multiplicative derate vector for this view.

        Deterministic in the view seed; correlated across views through
        the shared base (same arcs are slow everywhere) plus a
        view-specific random component — this is what gives the
        correlation layer something real to learn.
        """
        base = seeded_rng(derive_seed(self.seed, "base")).uniform(
            1.0 - spread, 1.0 + spread, size=num_arcs
        )
        local = seeded_rng(self.seed).uniform(1.0 - spread / 2, 1.0 + spread / 2, size=num_arcs)
        return self.delay_scale * base * local


def enumerate_views(num_views: int, seed: int = 0) -> List[View]:
    """Generate *num_views* distinct views cycling corners × modes."""
    if num_views < 1:
        raise ValueError("need at least one view")
    views: List[View] = []
    rng = seeded_rng(seed)
    for i in range(num_views):
        corner = _CORNER_KINDS[i % len(_CORNER_KINDS)]
        mode = _MODE_KINDS[(i // len(_CORNER_KINDS)) % len(_MODE_KINDS)]
        scale = {"ss": 1.15, "tt": 1.0, "ff": 0.88}[corner] * float(rng.uniform(0.97, 1.03))
        views.append(
            View(
                index=i,
                corner=corner,
                mode=mode,
                delay_scale=scale,
                seed=derive_seed(seed, "view", i),
            )
        )
    return views
