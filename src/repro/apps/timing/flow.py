"""The Figure-5 task graph: multi-view timing correlation as a Heteroflow.

Per view ``v`` the flow contains (matching the paper's three-step
description in §IV-A):

1. ``gen_v``    (host)   — run the view's STA pass (the "timer
   generates analysis datasets" stage);
2. ``extract_v`` (host)  — CPU statistics extraction: k-worst critical
   paths, CPPR credits, feature matrix + violation labels;
3. ``pull_x_v`` / ``pull_y_v`` / ``pull_w_v`` (pull) — ship the
   regression problem to a GPU;
4. ``gd_v``     (kernel) — logistic-regression gradient descent;
5. ``push_w_v`` (push)   — model weights back to the host;
6. ``assess_v`` (host)   — score the fitted model;
7. one final ``report`` (host) task synchronizes all views into the
   correlation report.

The builder attaches paper-scale cost annotations (calibrated against
the Fig.-6 anchors) so the same graph object drives both the threaded
runtime (functional, small circuits) and the virtual-time simulator
(netcard scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.timing.cppr import ClockTree, generate_clock_tree
from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.netlist import Netlist, generate_netlist
from repro.apps.timing.paths import k_worst_paths
from repro.apps.timing.regression import accuracy, standardize, train_logreg_host
from repro.apps.timing.sta import run_sta
from repro.apps.timing.views import View, enumerate_views
from repro.core.heteroflow import Heteroflow
from repro.sim.cost import CostModel
from repro.utils.rng import derive_seed
from repro.utils.span import Late

#: paper-scale per-view virtual costs (seconds / bytes), calibrated so
#: the netcard 1024-view sweep reproduces the Fig.-6 anchors; see
#: EXPERIMENTS.md for the calibration table.
PAPER_COSTS = {
    "gen": 1.2,
    "extract": 1.5,
    "assess": 0.3,
    "gd": 5.8,
    "pull_bytes": 2.0e6,
    "push_bytes": 0.5e6,
    "report": 1.0,
}

#: number of regression features (bias, arrival, slack, stages,
#: insertion delay, cppr credit)
NUM_FEATURES = 6


@dataclass
class _ViewState:
    """Mutable per-view data threaded between tasks (stateful spans)."""

    view: View
    sta: object = None
    x_flat: np.ndarray = field(default_factory=lambda: np.zeros(1))
    y: np.ndarray = field(default_factory=lambda: np.zeros(1))
    w: np.ndarray = field(default_factory=lambda: np.zeros(NUM_FEATURES))
    n: int = 0
    accuracy: float = 0.0


@dataclass
class TimingCorrelationFlow:
    """A built correlation flow plus everything needed to run/score it."""

    graph: Heteroflow
    cost_model: CostModel
    netlist: Netlist
    timing_graph: TimingGraph
    clock_tree: ClockTree
    views: List[View]
    #: per-view states (inspection after a run)
    states: List[_ViewState]
    #: build parameters (used by the host-only reference)
    paths_per_view: int = 64
    gd_epochs: int = 60
    learning_rate: float = 0.5
    #: filled by the final report task
    report: Dict[str, float] = field(default_factory=dict)

    @property
    def num_views(self) -> int:
        return len(self.views)

    def mean_accuracy(self) -> float:
        return float(np.mean([s.accuracy for s in self.states]))

    def weight_matrix(self) -> np.ndarray:
        """Fitted weights per view (views × features)."""
        return np.stack([s.w for s in self.states])

    def view_correlation(self) -> np.ndarray:
        """Pairwise cosine similarity between per-view weight vectors —
        the "correlation between different timing views" artifact."""
        W = self.weight_matrix()
        norms = np.linalg.norm(W, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        U = W / norms
        return U @ U.T


def build_timing_flow(
    num_views: int = 8,
    num_gates: int = 300,
    *,
    paths_per_view: int = 64,
    gd_epochs: int = 60,
    learning_rate: float = 0.5,
    seed: int = 0,
    netlist: Optional[Netlist] = None,
) -> TimingCorrelationFlow:
    """Construct the Fig.-5 correlation flow over *num_views* views."""
    if num_views < 1:
        raise ValueError("need at least one view")
    nl = netlist if netlist is not None else generate_netlist(num_gates, seed=derive_seed(seed, "netlist"))
    tg = TimingGraph.from_netlist(nl)
    tree = generate_clock_tree(tg.outputs.tolist(), seed=derive_seed(seed, "clock"))
    views = enumerate_views(num_views, seed=derive_seed(seed, "views"))

    # base (typical) analysis shared by every view's feature extraction
    base_sta = run_sta(tg)
    clock_period = base_sta.clock_period

    hf = Heteroflow(f"timing-correlation-{nl.name}")
    cm = CostModel()
    states = [_ViewState(view=v) for v in views]
    flow = TimingCorrelationFlow(
        graph=hf,
        cost_model=cm,
        netlist=nl,
        timing_graph=tg,
        clock_tree=tree,
        views=views,
        states=states,
        paths_per_view=paths_per_view,
        gd_epochs=gd_epochs,
        learning_rate=learning_rate,
    )

    def make_gen(state: _ViewState):
        def gen() -> None:
            state.sta = run_sta(tg, state.view, clock_period=clock_period)

        return gen

    def make_extract(state: _ViewState):
        def extract() -> None:
            sta = state.sta
            assert sta is not None, "gen must precede extract"
            paths = k_worst_paths(tg, base_sta, paths_per_view)
            n = len(paths)
            X = np.zeros((n, NUM_FEATURES), dtype=np.float64)
            y = np.zeros(n, dtype=np.float64)
            root = tree.leaf_of[int(tg.outputs[0])]  # any sink; used for pairing
            launch = int(tg.outputs[0])
            for i, p in enumerate(paths):
                ep = p.endpoint
                X[i, 0] = 1.0
                X[i, 1] = base_sta.arrival[ep]
                X[i, 2] = base_sta.slack[ep]
                X[i, 3] = p.num_stages
                X[i, 4] = tree.insertion_delay(ep)
                X[i, 5] = tree.common_path_delay(launch, ep)
                y[i] = 1.0 if sta.slack[ep] < 0 else 0.0
            Xs, _, _ = standardize(X[:, 1:])
            X[:, 1:] = Xs
            state.x_flat = np.ascontiguousarray(X.reshape(-1))
            state.y = y
            state.w = np.zeros(NUM_FEATURES, dtype=np.float64)
            state.n = n
            _ = root

        return extract

    def gd_kernel(ctx, n, d, epochs, lr, x_dev, y_dev, w_dev):
        from repro.apps.timing.regression import logreg_gd_kernel

        logreg_gd_kernel(ctx, n, d, epochs, lr, x_dev, y_dev, w_dev)

    def make_assess(state: _ViewState):
        def assess() -> None:
            X = state.x_flat.reshape(state.n, NUM_FEATURES)
            state.accuracy = accuracy(X, state.y, state.w)

        return assess

    def make_report():
        def report() -> None:
            flow.report = {
                "mean_accuracy": flow.mean_accuracy(),
                "num_views": float(len(views)),
                "clock_period": clock_period,
            }

        return report

    report_task = hf.host(make_report(), name="report")
    cm.annotate_host(report_task, PAPER_COSTS["report"])

    for state in states:
        v = state.view.index
        gen = hf.host(make_gen(state), name=f"gen_{v}")
        extract = hf.host(make_extract(state), name=f"extract_{v}")
        pull_x = hf.pull(lambda s=state: s.x_flat, name=f"pull_x_{v}")
        pull_y = hf.pull(lambda s=state: s.y, name=f"pull_y_{v}")
        pull_w = hf.pull(lambda s=state: s.w, name=f"pull_w_{v}")
        gd = hf.kernel(
            gd_kernel,
            Late(lambda s=state: s.n),
            NUM_FEATURES,
            gd_epochs,
            learning_rate,
            pull_x,
            pull_y,
            pull_w,
            name=f"gd_{v}",
        ).block_x(256).grid_x(max((paths_per_view + 255) // 256, 1))
        # gradient descent reads the feature/label spans and updates
        # only the weight span (declared for hflint's dataflow model)
        gd.reads(pull_x, pull_y)
        push_w = hf.push(pull_w, lambda s=state: s.w, name=f"push_w_{v}")
        assess = hf.host(make_assess(state), name=f"assess_{v}")

        gen.precede(extract)
        extract.precede(pull_x, pull_y, pull_w)
        gd.succeed(pull_x, pull_y, pull_w)
        gd.precede(push_w)
        push_w.precede(assess)
        assess.precede(report_task)

        cm.annotate_host(gen, PAPER_COSTS["gen"])
        cm.annotate_host(extract, PAPER_COSTS["extract"])
        cm.annotate_host(assess, PAPER_COSTS["assess"])
        cm.annotate_kernel(gd, PAPER_COSTS["gd"])
        cm.annotate_copy(pull_x, PAPER_COSTS["pull_bytes"])
        cm.annotate_copy(pull_y, PAPER_COSTS["pull_bytes"] * 0.25)
        cm.annotate_copy(pull_w, 4096)
        cm.annotate_copy(push_w, PAPER_COSTS["push_bytes"])

    return flow


def reference_correlation(flow: TimingCorrelationFlow) -> Dict[int, np.ndarray]:
    """Host-only reference: per-view weights trained without the runtime.

    Used by differential tests: running the flow through any executor
    must reproduce these weights exactly (the kernels run the same
    numpy math on the same inputs).
    """
    out: Dict[int, np.ndarray] = {}
    tg = flow.timing_graph
    base_sta = run_sta(tg)
    paths = k_worst_paths(tg, base_sta, flow.paths_per_view)
    n = len(paths)
    launch = int(tg.outputs[0])
    X = np.zeros((n, NUM_FEATURES))
    for i, p in enumerate(paths):
        ep = p.endpoint
        X[i, 0] = 1.0
        X[i, 1] = base_sta.arrival[ep]
        X[i, 2] = base_sta.slack[ep]
        X[i, 3] = p.num_stages
        X[i, 4] = flow.clock_tree.insertion_delay(ep)
        X[i, 5] = flow.clock_tree.common_path_delay(launch, ep)
    Xs, _, _ = standardize(X[:, 1:])
    X[:, 1:] = Xs
    for state in flow.states:
        sta = run_sta(tg, state.view, clock_period=base_sta.clock_period)
        y = (sta.slack[[p.endpoint for p in paths]] < 0).astype(np.float64)
        out[state.view.index] = train_logreg_host(
            X, y, epochs=flow.gd_epochs, lr=flow.learning_rate
        )
    return out
