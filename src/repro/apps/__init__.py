"""Application substrates used by the paper's evaluation.

- :mod:`repro.apps.timing` — VLSI static timing analysis and
  multi-view correlation (the OpenTimer-derived experiment, Fig. 5/6);
- :mod:`repro.apps.placement` — matching-based detailed placement
  (the DREAMPlace-derived experiment, Fig. 7/8/9).
"""
