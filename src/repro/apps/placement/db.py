"""Placement database: cells, nets, rows — and a bigblue4-like generator.

Cells are unit-size and sit on a sites × rows grid (one cell per site —
matching-based detailed placement permutes same-footprint cells, so the
unit-size abstraction preserves the algorithm exactly).  Nets are
stored in CSR form (``net_ptr``/``net_cells``) for vectorized HPWL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng


@dataclass
class PlacementDB:
    """One placement instance.

    ``x``/``y`` hold per-cell site and row coordinates (int64); every
    (x, y) pair is unique (legality).  ``net_ptr``/``net_cells`` is the
    CSR net->cells incidence; ``cell_ptr``/``cell_nets`` is its
    transpose (cell->nets).
    """

    name: str
    num_sites: int
    num_rows: int
    x: np.ndarray
    y: np.ndarray
    net_ptr: np.ndarray
    net_cells: np.ndarray
    cell_ptr: np.ndarray = field(default=None)  # type: ignore[assignment]
    cell_nets: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cell_ptr is None:
            self._build_transpose()

    @property
    def num_cells(self) -> int:
        return int(self.x.size)

    @property
    def num_nets(self) -> int:
        return int(self.net_ptr.size - 1)

    def _build_transpose(self) -> None:
        num_cells = self.num_cells
        counts = np.zeros(num_cells + 1, dtype=np.int64)
        np.add.at(counts[1:], self.net_cells, 1)
        self.cell_ptr = np.cumsum(counts)
        self.cell_nets = np.empty(self.net_cells.size, dtype=np.int64)
        cursor = self.cell_ptr[:-1].copy()
        net_of_pin = np.repeat(
            np.arange(self.num_nets), np.diff(self.net_ptr)
        )
        for pin, cell in enumerate(self.net_cells):
            self.cell_nets[cursor[cell]] = net_of_pin[pin]
            cursor[cell] += 1

    def nets_of(self, cell: int) -> np.ndarray:
        return self.cell_nets[self.cell_ptr[cell] : self.cell_ptr[cell + 1]]

    def cells_of(self, net: int) -> np.ndarray:
        return self.net_cells[self.net_ptr[net] : self.net_ptr[net + 1]]

    def neighbors_csr(self) -> tuple:
        """Conflict-graph adjacency in CSR form.

        Two cells conflict iff they share a net.  Returned as
        ``(adj_ptr, adj_idx)`` with duplicate edges removed.
        """
        neighbor_sets: List[set] = [set() for _ in range(self.num_cells)]
        for net in range(self.num_nets):
            cells = self.cells_of(net)
            if cells.size > 16:
                # clip giant nets like real DP does: they would make
                # the conflict graph a clique and kill the MIS
                cells = cells[:16]
            for i, a in enumerate(cells):
                for b in cells[i + 1 :]:
                    neighbor_sets[a].add(int(b))
                    neighbor_sets[b].add(int(a))
        ptr = np.zeros(self.num_cells + 1, dtype=np.int64)
        for c, s in enumerate(neighbor_sets):
            ptr[c + 1] = ptr[c] + len(s)
        idx = np.empty(int(ptr[-1]), dtype=np.int64)
        for c, s in enumerate(neighbor_sets):
            idx[ptr[c] : ptr[c + 1]] = sorted(s)
        return ptr, idx

    def check_legal(self) -> None:
        """Every cell on the grid, one cell per site."""
        if np.any(self.x < 0) or np.any(self.x >= self.num_sites):
            raise ValueError("cell x outside row")
        if np.any(self.y < 0) or np.any(self.y >= self.num_rows):
            raise ValueError("cell y outside grid")
        occupancy = set(zip(self.x.tolist(), self.y.tolist()))
        if len(occupancy) != self.num_cells:
            raise ValueError("overlapping cells")

    def copy(self) -> "PlacementDB":
        return PlacementDB(
            name=self.name,
            num_sites=self.num_sites,
            num_rows=self.num_rows,
            x=self.x.copy(),
            y=self.y.copy(),
            net_ptr=self.net_ptr,
            net_cells=self.net_cells,
            cell_ptr=self.cell_ptr,
            cell_nets=self.cell_nets,
        )


def generate_placement(
    num_cells: int,
    num_nets: int = 0,
    *,
    name: str = "synth",
    seed: SeedLike = 0,
    pins_per_net: tuple = (2, 5),
    locality: float = 0.15,
    fill: float = 0.5,
) -> PlacementDB:
    """Generate a legal random placement with local nets.

    *locality* controls how spatially clustered each net's cells are
    (fraction of the die span); real netlists are local, and locality
    is what gives detailed placement wirelength to recover.
    *fill* is the site occupancy (0.5 = half the grid is free).
    """
    if num_cells < 2:
        raise ValueError("need at least two cells")
    rng = seeded_rng(seed)
    if num_nets <= 0:
        num_nets = int(num_cells * 1.0)
    grid = int(np.ceil(np.sqrt(num_cells / fill)))
    num_sites = num_rows = grid

    # choose distinct sites
    total = num_sites * num_rows
    flat = rng.choice(total, size=num_cells, replace=False)
    x = (flat % num_sites).astype(np.int64)
    y = (flat // num_sites).astype(np.int64)

    # nets: anchor cell + nearby cells
    lo, hi = pins_per_net
    ptr = [0]
    cells_acc: List[int] = []
    span = max(int(grid * locality), 2)
    for _ in range(num_nets):
        k = int(rng.integers(lo, hi + 1))
        anchor = int(rng.integers(num_cells))
        ax, ay = x[anchor], y[anchor]
        near = np.nonzero(
            (np.abs(x - ax) <= span) & (np.abs(y - ay) <= span)
        )[0]
        if near.size < k:
            near = np.arange(num_cells)
        members = rng.choice(near, size=min(k, near.size), replace=False).tolist()
        if anchor not in members:
            members[0] = anchor
        cells_acc.extend(int(m) for m in members)
        ptr.append(len(cells_acc))

    db = PlacementDB(
        name=name,
        num_sites=num_sites,
        num_rows=num_rows,
        x=x,
        y=y,
        net_ptr=np.asarray(ptr, dtype=np.int64),
        net_cells=np.asarray(cells_acc, dtype=np.int64),
    )
    db.check_legal()
    return db


def bigblue4_like(scale: float = 1.0, seed: SeedLike = 11) -> PlacementDB:
    """A scaled stand-in for bigblue4 (2.2M cells / 2.2M nets at 1.0)."""
    cells = max(int(2_200_000 * scale), 16)
    return generate_placement(cells, cells, name=f"bigblue4@{scale:g}", seed=seed)
