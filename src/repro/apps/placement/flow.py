"""The Figure-8 task graph: K flattened detailed-placement iterations.

Per iteration ``i`` (matching the paper's Fig. 8 structure):

- ``prio_i``   (host)   — draw random MIS priorities, reset the state;
- ``pull_prio_i`` / ``pull_state_i`` (pull) — ship to the GPU
  (the adjacency CSR is pulled **once**, before iteration 0, and
  reused by every MIS kernel through transitive dependencies — the
  data-reuse pattern of the paper's Fig. 3);
- ``mis_i``    (kernel) — Blelloch random-priority MIS on the GPU
  (the step DREAMPlace accelerates);
- ``push_state_i`` (push) — verdict vector back to the host;
- ``part_i``   (host)   — **sequential** partitioning into windows;
- ``match_i_p`` (host × P) — parallel bipartite matching tasks;
- ``apply_i``  (host)   — write matched positions, record HPWL.

``apply_i`` precedes ``prio_{i+1}``; everything else overlaps across
iterations as dependencies allow.  Because every MIS kernel groups
with the single shared adjacency pull, Algorithm 1 places the whole
graph on **one** GPU — which is exactly why Fig. 9 shows no benefit
from additional GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.placement.db import PlacementDB, generate_placement
from repro.apps.placement.matching import apply_matches, match_window
from repro.apps.placement.mis import IN_SET, mis_kernel
from repro.apps.placement.partition import partition_windows
from repro.apps.placement.wirelength import hpwl
from repro.core.heteroflow import Heteroflow
from repro.sim.cost import CostModel
from repro.utils.rng import derive_seed, seeded_rng
from repro.utils.span import Late

#: bigblue4-scale per-iteration virtual costs (seconds / bytes),
#: calibrated against the Fig.-9 anchors; see EXPERIMENTS.md.
PAPER_COSTS = {
    "prio": 0.01,
    "mis": 0.05,
    "partition": 0.2,
    "match_total": 0.95,
    "apply": 0.02,
    "adj_bytes": 35.0e6,
    "prio_bytes": 17.6e6,
    "state_bytes": 2.2e6,
    "num_matchers": 32,
}


@dataclass
class DetailedPlacementFlow:
    """A built K-iteration placement flow plus its runtime state."""

    graph: Heteroflow
    cost_model: CostModel
    db: PlacementDB
    iterations: int
    num_matchers: int
    window_size: int
    seed: int = 0
    #: positions being refined in place (copies of the db's)
    x: np.ndarray = field(default=None)  # type: ignore[assignment]
    y: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: HPWL after each iteration's apply (index 0 = initial)
    hpwl_trace: List[float] = field(default_factory=list)
    #: per-iteration independent-set sizes
    mis_sizes: List[int] = field(default_factory=list)
    #: per-iteration claimed improvements
    improvements: List[float] = field(default_factory=list)

    @property
    def initial_hpwl(self) -> float:
        return self.hpwl_trace[0]

    @property
    def final_hpwl(self) -> float:
        return self.hpwl_trace[-1]

    def total_improvement(self) -> float:
        return self.initial_hpwl - self.final_hpwl


def build_placement_flow(
    num_cells: int = 200,
    iterations: int = 4,
    *,
    window_size: int = 6,
    num_matchers: int = 4,
    seed: int = 0,
    db: Optional[PlacementDB] = None,
) -> DetailedPlacementFlow:
    """Construct the Fig.-8 flow over *iterations* flattened iterations."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if num_matchers < 1:
        raise ValueError("need at least one matching task")
    pdb = db if db is not None else generate_placement(num_cells, seed=derive_seed(seed, "db"))
    adj_ptr, adj_idx = pdb.neighbors_csr()
    n = pdb.num_cells

    hf = Heteroflow(f"detailed-placement-{pdb.name}")
    cm = CostModel()
    flow = DetailedPlacementFlow(
        graph=hf,
        cost_model=cm,
        db=pdb,
        iterations=iterations,
        num_matchers=num_matchers,
        window_size=window_size,
        seed=seed,
        x=pdb.x.copy(),
        y=pdb.y.copy(),
    )
    flow.hpwl_trace.append(hpwl(pdb, flow.x, flow.y))

    # mutable per-iteration scratch shared between tasks
    priorities = np.zeros(n, dtype=np.float64)
    state = np.zeros(n, dtype=np.int64)
    windows: List[np.ndarray] = []
    results: List[Optional[tuple]] = []

    # adjacency pulled once, reused by every iteration's kernel
    pull_adj_ptr = hf.pull(adj_ptr, name="pull_adj_ptr")
    pull_adj_idx = hf.pull(adj_idx, name="pull_adj_idx")
    cm.annotate_copy(pull_adj_ptr, PAPER_COSTS["adj_bytes"] * 0.2)
    cm.annotate_copy(pull_adj_idx, PAPER_COSTS["adj_bytes"] * 0.8)

    def make_prio(i: int):
        rng = seeded_rng(derive_seed(seed, "prio", i))

        def prio() -> None:
            priorities[:] = rng.permutation(n).astype(np.float64)
            state[:] = 0

        return prio

    def make_partition(i: int):
        def part() -> None:
            mis_cells = np.nonzero(state == IN_SET)[0]
            flow.mis_sizes.append(int(mis_cells.size))
            windows[:] = partition_windows(mis_cells, flow.x, flow.y, window_size)
            results[:] = [None] * len(windows)

        return part

    def make_matcher(i: int, p: int):
        def match() -> None:
            for widx in range(p, len(windows), num_matchers):
                results[widx] = match_window(pdb, windows[widx], flow.x, flow.y)

        return match

    def make_apply(i: int):
        def apply_() -> None:
            done = [r for r in results if r is not None]
            if len(done) != len(windows):
                raise RuntimeError("matching tasks incomplete before apply")
            gained = apply_matches(flow.x, flow.y, windows, results)
            flow.improvements.append(gained)
            flow.hpwl_trace.append(hpwl(pdb, flow.x, flow.y))

        return apply_

    prev_apply = None
    for i in range(iterations):
        prio = hf.host(make_prio(i), name=f"prio_{i}")
        pull_prio = hf.pull(priorities, name=f"pull_prio_{i}")
        pull_state = hf.pull(state, name=f"pull_state_{i}")
        mis = hf.kernel(
            mis_kernel,
            Late(lambda: n),
            pull_adj_ptr,
            pull_adj_idx,
            pull_prio,
            pull_state,
            name=f"mis_{i}",
        ).block_x(256).grid_x(max((n + 255) // 256, 1))
        # the shared adjacency CSR and the priorities are read-only;
        # only the state vector is written (declared for hflint)
        mis.reads(pull_adj_ptr, pull_adj_idx, pull_prio)
        push_state = hf.push(pull_state, state, name=f"push_state_{i}")
        part = hf.host(make_partition(i), name=f"part_{i}")
        matchers = [
            hf.host(make_matcher(i, p), name=f"match_{i}_{p}") for p in range(num_matchers)
        ]
        apply_ = hf.host(make_apply(i), name=f"apply_{i}")

        prio.precede(pull_prio, pull_state)
        mis.succeed(pull_prio, pull_state)
        if i == 0:
            mis.succeed(pull_adj_ptr, pull_adj_idx)
        mis.precede(push_state)
        push_state.precede(part)
        for mt in matchers:
            part.precede(mt)
            mt.precede(apply_)
        if prev_apply is not None:
            prev_apply.precede(prio)
        prev_apply = apply_

        cm.annotate_host(prio, PAPER_COSTS["prio"])
        cm.annotate_kernel(mis, PAPER_COSTS["mis"])
        cm.annotate_host(part, PAPER_COSTS["partition"])
        for mt in matchers:
            cm.annotate_host(mt, PAPER_COSTS["match_total"] / num_matchers)
        cm.annotate_host(apply_, PAPER_COSTS["apply"])
        cm.annotate_copy(pull_prio, PAPER_COSTS["prio_bytes"])
        cm.annotate_copy(pull_state, PAPER_COSTS["state_bytes"])
        cm.annotate_copy(push_state, PAPER_COSTS["state_bytes"])

    return flow


def run_reference(flow: DetailedPlacementFlow) -> Dict[str, List[float]]:
    """Host-only oracle: the same K iterations without the runtime.

    Returns the HPWL trace; differential tests compare it against the
    trace produced by executing the flow on an executor (fresh build,
    same seed — the iteration math is deterministic).
    """
    from repro.apps.placement.mis import mis_reference

    pdb = flow.db
    adj_ptr, adj_idx = pdb.neighbors_csr()
    n = pdb.num_cells
    x, y = pdb.x.copy(), pdb.y.copy()
    trace = [hpwl(pdb, x, y)]
    sizes: List[int] = []
    # note: seed derivation must mirror build_placement_flow
    for i in range(flow.iterations):
        rng = seeded_rng(derive_seed(flow.seed, "prio", i))
        priorities = rng.permutation(n).astype(np.float64)
        state = mis_reference(adj_ptr, adj_idx, priorities)
        mis_cells = np.nonzero(state == IN_SET)[0]
        sizes.append(int(mis_cells.size))
        windows = partition_windows(mis_cells, x, y, flow.window_size)
        results = [match_window(pdb, w, x, y) for w in windows]
        apply_matches(x, y, windows, results)
        trace.append(hpwl(pdb, x, y))
    return {"hpwl": trace, "mis_sizes": [float(s) for s in sizes]}
