"""Maximal independent set — Blelloch-style random-priority MIS.

The conflict graph joins cells that share a net; an independent set of
cells can be re-placed simultaneously without their wirelength deltas
interacting.  The paper (citing Blelloch [32]) uses the random-priority
parallel algorithm: repeatedly, every undecided vertex whose priority
beats all undecided neighbours joins the set and knocks its neighbours
out.  With distinct priorities this terminates in O(log n) expected
rounds and — a key testable property — computes exactly the same set
as the *sequential greedy* algorithm scanning vertices in decreasing
priority order (it is the lexicographically-first MIS).

``mis_kernel`` is the GPU version (numpy-vectorized rounds over CSR
adjacency, device-memory views); ``mis_reference`` is the sequential
greedy oracle.
"""

from __future__ import annotations

import numpy as np

#: state codes in the device-side state vector
UNDECIDED, IN_SET, REMOVED = 0, 1, 2


def mis_rounds(
    adj_ptr: np.ndarray,
    adj_idx: np.ndarray,
    priority: np.ndarray,
    state: np.ndarray,
    max_rounds: int = 10_000,
) -> int:
    """Run random-priority MIS rounds in place; returns rounds used.

    ``state`` must start all-``UNDECIDED``; on return every vertex is
    ``IN_SET`` or ``REMOVED``.
    """
    n = priority.size
    deg = np.diff(adj_ptr)
    owner = np.repeat(np.arange(n), deg)  # vertex owning each adj slot
    rounds = 0
    while True:
        undecided = state == UNDECIDED
        if not np.any(undecided):
            return rounds
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("MIS did not converge (duplicate priorities?)")
        # neighbour priorities, masking decided neighbours to -inf
        nbr_pri = np.where(undecided[adj_idx], priority[adj_idx], -np.inf)
        best_nbr = np.full(n, -np.inf)
        has_slots = deg > 0
        if np.any(has_slots):
            seg_max = np.maximum.reduceat(nbr_pri, adj_ptr[:-1][has_slots])
            best_nbr[has_slots] = seg_max
        winners = undecided & (priority > best_nbr)
        state[winners] = IN_SET
        # losers: undecided neighbours of winners
        knocked = winners[owner] & (state[adj_idx] == UNDECIDED)
        state[adj_idx[knocked]] = REMOVED


def mis_kernel(ctx, n, adj_ptr_dev, adj_idx_dev, priority_dev, state_dev) -> None:
    """GPU kernel: computes the MIS entirely in device memory.

    ``state_dev`` is zeroed by the caller (all undecided) and holds the
    verdict per cell on return.  The launch context is cost-model
    metadata only.
    """
    n = int(n)
    adj_ptr = adj_ptr_dev[: n + 1]
    adj_idx = adj_idx_dev[: int(adj_ptr[n])]
    priority = priority_dev[:n]
    state = state_dev[:n]
    state[:] = UNDECIDED
    mis_rounds(adj_ptr, adj_idx, priority, state)


def mis_reference(adj_ptr: np.ndarray, adj_idx: np.ndarray, priority: np.ndarray) -> np.ndarray:
    """Sequential greedy MIS by decreasing priority (the oracle).

    Returns the state vector (``IN_SET``/``REMOVED``); must equal the
    parallel result for distinct priorities.
    """
    n = priority.size
    state = np.full(n, UNDECIDED, dtype=np.int64)
    for v in np.argsort(-priority, kind="stable"):
        if state[v] != UNDECIDED:
            continue
        state[v] = IN_SET
        nbrs = adj_idx[adj_ptr[v] : adj_ptr[v + 1]]
        state[nbrs[state[nbrs] == UNDECIDED]] = REMOVED
    return state


def verify_independent(adj_ptr: np.ndarray, adj_idx: np.ndarray, state: np.ndarray) -> bool:
    """True iff no two ``IN_SET`` vertices are adjacent and the set is
    maximal (every ``REMOVED`` vertex has an ``IN_SET`` neighbour)."""
    n = state.size
    in_set = state == IN_SET
    for v in range(n):
        nbrs = adj_idx[adj_ptr[v] : adj_ptr[v + 1]]
        if in_set[v] and np.any(in_set[nbrs]):
            return False
        if state[v] == REMOVED and not np.any(in_set[nbrs]):
            return False
        if state[v] == UNDECIDED:
            return False
    return True


def random_priorities(n: int, rng: np.random.Generator) -> np.ndarray:
    """A random permutation as priorities — distinct by construction."""
    return rng.permutation(n).astype(np.float64)
