"""Half-perimeter wirelength (HPWL), vectorized.

HPWL of a net is the half-perimeter of its pins' bounding box; total
HPWL is the standard placement objective.  Net reductions use
``minimum.reduceat``/``maximum.reduceat`` over the CSR pin arrays — one
pass, no Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.apps.placement.db import PlacementDB


def net_hpwl(
    net_ptr: np.ndarray,
    net_cells: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Per-net HPWL vector (empty nets contribute 0)."""
    starts = net_ptr[:-1]
    sizes = np.diff(net_ptr)
    px = x[net_cells].astype(np.float64)
    py = y[net_cells].astype(np.float64)
    out = np.zeros(starts.size, dtype=np.float64)
    nonempty = sizes > 0
    if not np.any(nonempty):
        return out
    s = starts[nonempty]
    out[nonempty] = (
        np.maximum.reduceat(px, s)
        - np.minimum.reduceat(px, s)
        + np.maximum.reduceat(py, s)
        - np.minimum.reduceat(py, s)
    )
    return out


def hpwl(db: PlacementDB, x: np.ndarray = None, y: np.ndarray = None) -> float:
    """Total HPWL of *db* (or of explicit position vectors)."""
    if x is None:
        x = db.x
    if y is None:
        y = db.y
    return float(net_hpwl(db.net_ptr, db.net_cells, x, y).sum())


def bbox_excluding(
    db: PlacementDB,
    net: int,
    cell: int,
    x: np.ndarray,
    y: np.ndarray,
) -> tuple:
    """Bounding box of *net*'s pins excluding *cell*.

    Returns ``(min_x, max_x, min_y, max_y)`` or ``None`` when the net
    has no other pins (its HPWL then depends only on the moved cell,
    i.e. is zero for a single-pin net).
    """
    cells = db.cells_of(net)
    others = cells[cells != cell]
    if others.size == 0:
        return None
    ox = x[others]
    oy = y[others]
    return float(ox.min()), float(ox.max()), float(oy.min()), float(oy.max())


def cell_cost_at(
    db: PlacementDB,
    cell: int,
    cx: float,
    cy: float,
    x: np.ndarray,
    y: np.ndarray,
) -> float:
    """HPWL contribution of *cell*'s nets with the cell at (cx, cy).

    All other cells are taken at their current positions.  This is the
    cost-matrix entry of the bipartite matching formulation (Fig. 7b).
    """
    total = 0.0
    for net in db.nets_of(cell):
        box = bbox_excluding(db, int(net), cell, x, y)
        if box is None:
            continue
        mnx, mxx, mny, mxy = box
        total += max(mxx, cx) - min(mnx, cx) + max(mxy, cy) - min(mny, cy)
    return total
