"""VLSI detailed placement substrate (DREAMPlace-like).

Implements the matching-based detailed placement algorithm of the
paper's second experiment (Fig. 7): iterate

1. **maximal independent set** — Blelloch-style random-priority MIS
   over the cell conflict graph (cells sharing a net conflict); the
   step DREAMPlace offloads to GPU;
2. **partitioning** — sequential clustering of independent cells into
   local windows;
3. **bipartite matching** — per-window optimal re-assignment of cells
   to locations minimizing half-perimeter wirelength (HPWL), parallel
   across windows on CPUs.

:mod:`~repro.apps.placement.flow` flattens K iterations into one
Heteroflow graph (Fig. 8) and attaches bigblue4-scale cost annotations
for the Fig.-9 benchmarks.
"""

from repro.apps.placement.db import PlacementDB, generate_placement
from repro.apps.placement.wirelength import hpwl, net_hpwl
from repro.apps.placement.mis import mis_kernel, mis_reference, verify_independent
from repro.apps.placement.partition import partition_windows
from repro.apps.placement.matching import match_window
from repro.apps.placement.flow import DetailedPlacementFlow, build_placement_flow

__all__ = [
    "DetailedPlacementFlow",
    "PlacementDB",
    "build_placement_flow",
    "generate_placement",
    "hpwl",
    "match_window",
    "mis_kernel",
    "mis_reference",
    "net_hpwl",
    "partition_windows",
    "verify_independent",
]
