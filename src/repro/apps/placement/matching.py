"""Weighted bipartite matching per window (Fig. 7b).

Each window holds independent cells and the set of locations they
currently occupy.  The cost of assigning cell *i* to location *j* is
the HPWL contribution of *i*'s nets with *i* at *j* (other cells
fixed); because window cells share no nets, per-cell costs add up
exactly and the optimal assignment can only lower total HPWL (the
identity assignment is always feasible).

The assignment is solved with scipy's Jonker-Volgenant
``linear_sum_assignment`` — the same O(n³) Hungarian-class machinery a
production implementation would use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.apps.placement.db import PlacementDB
from repro.apps.placement.wirelength import cell_cost_at


def window_cost_matrix(
    db: PlacementDB,
    window: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """cost[i, j] = HPWL of cell window[i] placed at window[j]'s slot."""
    k = window.size
    slots_x = x[window].astype(np.float64)
    slots_y = y[window].astype(np.float64)
    cost = np.empty((k, k), dtype=np.float64)
    for i, cell in enumerate(window):
        for j in range(k):
            cost[i, j] = cell_cost_at(db, int(cell), slots_x[j], slots_y[j], x, y)
    return cost


def match_window(
    db: PlacementDB,
    window: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Optimal permutation of *window*'s cells over their slots.

    Returns ``(new_x, new_y, improvement)`` where the position arrays
    cover only the window's cells (index-aligned with *window*) and
    *improvement* is the non-negative HPWL decrease of this window's
    nets under the single-cell cost model.
    """
    if window.size == 0:
        return np.empty(0, dtype=x.dtype), np.empty(0, dtype=y.dtype), 0.0
    if window.size == 1:
        return x[window].copy(), y[window].copy(), 0.0
    cost = window_cost_matrix(db, window, x, y)
    rows, cols = linear_sum_assignment(cost)
    identity = float(np.trace(cost))
    best = float(cost[rows, cols].sum())
    improvement = identity - best
    slots_x = x[window]
    slots_y = y[window]
    new_x = slots_x[cols].copy()
    new_y = slots_y[cols].copy()
    return new_x, new_y, improvement


def apply_matches(
    x: np.ndarray,
    y: np.ndarray,
    windows,
    results,
) -> float:
    """Write matched positions back into the global arrays.

    Returns the summed claimed improvement.  Positions stay a
    permutation of the originals (cells only swap slots), preserving
    legality by construction.
    """
    total = 0.0
    for window, (nx, ny, imp) in zip(windows, results):
        x[window] = nx
        y[window] = ny
        total += imp
    return total
