"""Sequential partitioning: cluster independent cells into windows.

The second step of the matching-based algorithm (Fig. 7c): the
independent cells are grouped into small spatially local *windows*;
each window becomes one bipartite matching problem.  The paper runs
this step sequentially on a CPU — it is the serial fraction that caps
the placement workload's CPU scaling near 20 cores (Fig. 9).
"""

from __future__ import annotations

from typing import List

import numpy as np


def partition_windows(
    cells: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    window_size: int,
) -> List[np.ndarray]:
    """Split *cells* into spatially sorted windows of ≤ *window_size*.

    Cells are ordered by (row, site) so windows are local; a trailing
    window may be smaller.  Windows of size 1 are kept (they are
    trivially matched, i.e. stay put), preserving a fixed relationship
    between the independent-set size and the task count.
    """
    if window_size < 1:
        raise ValueError("window size must be positive")
    if cells.size == 0:
        return []
    order = np.lexsort((x[cells], y[cells]))
    ordered = cells[order]
    return [ordered[i : i + window_size] for i in range(0, ordered.size, window_size)]
