"""The sparse-inference task graph (extension EXT-SNN).

Graph shape (per ref [47]'s pipeline decomposition):

- the input batch splits into ``num_blocks`` column blocks;
- blocks are assigned round-robin to ``num_shards`` device shards;
  each shard gets its **own** pulls of every layer's CSR arrays
  (weights replicated per shard, the standard multi-GPU inference
  layout), so Algorithm 1 forms one placement group per shard and
  spreads shards across GPUs;
- per (block, layer): one fused SpMM+bias+ReLU kernel; activations
  ping-pong between two device buffers and never leave the GPU until
  the final readout;
- per block: an argmax readout kernel, a push of the winning-neuron
  indices, and a host task folding them into the result;
- a final host task assembles the category vector.

The per-(block, layer) kernels of one block form a chain, and chains
pipeline: block 0 can be at layer 5 while block 3 is still at layer 0
— exactly the overlap structure the reference exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.sparsenn.kernels import argmax_readout_kernel, spmm_bias_relu_kernel
from repro.apps.sparsenn.model import SparseMlp, generate_batch, generate_sparse_mlp
from repro.core.heteroflow import Heteroflow
from repro.sim.cost import CostModel
from repro.utils.rng import derive_seed

#: virtual cost of one fused layer kernel, seconds per (nnz * column)
KERNEL_SECONDS_PER_NNZ_COL = 2.0e-9
#: host-side cost constants for the sim annotation
HOST_FOLD_SECONDS = 0.01
HOST_ASSEMBLE_SECONDS = 0.05


@dataclass
class SparseInferenceFlow:
    """A built inference flow plus its runtime state."""

    graph: Heteroflow
    cost_model: CostModel
    model: SparseMlp
    batch: np.ndarray
    num_blocks: int
    num_shards: int
    #: per-block winning-neuron indices (filled by fold tasks)
    block_categories: List[np.ndarray] = field(default_factory=list)
    #: final assembled categories (filled by the assemble task)
    categories: Optional[np.ndarray] = None

    @property
    def batch_size(self) -> int:
        return int(self.batch.shape[1])


def build_inference_flow(
    width: int = 64,
    num_layers: int = 6,
    batch_size: int = 32,
    *,
    num_blocks: int = 4,
    num_shards: int = 2,
    nnz_per_row: int = 8,
    seed: int = 0,
    model: Optional[SparseMlp] = None,
    paper_nnz_scale: float = 1.0,
) -> SparseInferenceFlow:
    """Construct the EXT-SNN inference graph.

    *paper_nnz_scale* multiplies the cost annotations so a small
    functional model can carry challenge-scale virtual costs.
    """
    if num_blocks < 1 or num_shards < 1:
        raise ValueError("blocks and shards must be positive")
    if batch_size < num_blocks:
        raise ValueError("need at least one column per block")
    mlp = model if model is not None else generate_sparse_mlp(
        width, num_layers, nnz_per_row, seed=derive_seed(seed, "model")
    )
    x = generate_batch(mlp.width, batch_size, seed=derive_seed(seed, "batch"))

    hf = Heteroflow(f"sparsenn-w{mlp.width}-l{mlp.num_layers}")
    cm = CostModel()
    flow = SparseInferenceFlow(
        graph=hf,
        cost_model=cm,
        model=mlp,
        batch=x,
        num_blocks=num_blocks,
        num_shards=min(num_shards, num_blocks),
    )

    # column ranges per block
    edges = np.linspace(0, batch_size, num_blocks + 1).astype(int)
    blocks = [(int(edges[i]), int(edges[i + 1])) for i in range(num_blocks)]

    # per-shard weight pulls (replicated CSR arrays per device shard)
    shard_weight_pulls: List[List[tuple]] = []
    for s in range(flow.num_shards):
        per_layer = []
        for l in range(mlp.num_layers):
            data, indices, indptr, bias = mlp.layer_arrays(l)
            p_data = hf.pull(data, name=f"w{l}_data_s{s}")
            p_idx = hf.pull(indices, name=f"w{l}_idx_s{s}")
            p_ptr = hf.pull(indptr, name=f"w{l}_ptr_s{s}")
            p_bias = hf.pull(bias, name=f"w{l}_bias_s{s}")
            nbytes = data.nbytes + indices.nbytes + indptr.nbytes + bias.nbytes
            for p, frac in ((p_data, 0.4), (p_idx, 0.4), (p_ptr, 0.1), (p_bias, 0.1)):
                cm.annotate_copy(p, nbytes * frac * paper_nnz_scale)
            per_layer.append((p_data, p_idx, p_ptr, p_bias))
        shard_weight_pulls.append(per_layer)

    assemble_parts: List = []
    flow.block_categories = [np.zeros(hi - lo, dtype=np.int64) for lo, hi in blocks]

    def make_fold(b: int, idx_host: np.ndarray):
        def fold() -> None:
            flow.block_categories[b][:] = idx_host

        return fold

    def assemble() -> None:
        flow.categories = np.concatenate(flow.block_categories)

    assemble_task = hf.host(assemble, name="assemble")
    cm.annotate_host(assemble_task, HOST_ASSEMBLE_SECONDS)

    for b, (lo, hi) in enumerate(blocks):
        shard = b % flow.num_shards
        bw = hi - lo
        x_block = np.ascontiguousarray(x[:, lo:hi].reshape(-1))
        scratch = np.zeros(mlp.width * bw)
        pull_a = hf.pull(x_block, name=f"act_a_b{b}")
        pull_b = hf.pull(scratch, name=f"act_b_b{b}")
        cm.annotate_copy(pull_a, x_block.nbytes * paper_nnz_scale)
        cm.annotate_copy(pull_b, scratch.nbytes * paper_nnz_scale)

        prev_kernel = None
        src, dst = pull_a, pull_b
        for l in range(mlp.num_layers):
            wd, wi, wp, wb = shard_weight_pulls[shard][l]
            k = hf.kernel(
                spmm_bias_relu_kernel,
                mlp.width,
                mlp.width,
                bw,
                wd,
                wi,
                wp,
                wb,
                src,
                dst,
                name=f"layer{l}_b{b}",
            ).block_x(256).grid_x(max((mlp.width + 255) // 256, 1))
            # shard weights are shared read-only by every block on the
            # shard; declaring that keeps concurrent blocks race-free
            # under hflint (HF011) while dst stays read-write
            k.reads(wd, wi, wp, wb, src)
            cm.annotate_kernel(
                k,
                KERNEL_SECONDS_PER_NNZ_COL * mlp.layers[l].nnz * bw * paper_nnz_scale,
            )
            k.succeed(wd, wi, wp, wb)
            if prev_kernel is None:
                k.succeed(src, dst)
            else:
                k.succeed(prev_kernel)
            prev_kernel = k
            src, dst = dst, src

        idx_host = np.zeros(bw, dtype=np.int64)
        pull_idx = hf.pull(idx_host, name=f"idx_b{b}")
        cm.annotate_copy(pull_idx, idx_host.nbytes)
        readout = hf.kernel(
            argmax_readout_kernel, mlp.width, bw, src, pull_idx, name=f"readout_b{b}"
        ).reads(src)
        cm.annotate_kernel(readout, 1e-4)
        readout.succeed(prev_kernel, pull_idx)
        push_idx = hf.push(pull_idx, idx_host, name=f"push_idx_b{b}")
        push_idx.succeed(readout)
        fold = hf.host(make_fold(b, idx_host), name=f"fold_b{b}")
        fold.succeed(push_idx)
        fold.precede(assemble_task)
        cm.annotate_host(fold, HOST_FOLD_SECONDS)
        assemble_parts.append(fold)

    return flow


def reference_categories(flow: SparseInferenceFlow) -> np.ndarray:
    """Host-only oracle: straight scipy inference over the full batch."""
    return flow.model.category_of(flow.batch)
