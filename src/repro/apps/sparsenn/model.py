"""Sparse MLP models (Sparse DNN Graph Challenge style).

Networks are L layers of constant width n with uniformly sparse
weights (a fixed number of nonzeros per output neuron), biases, and
ReLU activations — the structure of the challenge networks ref [47]
accelerates.  Weights are stored in CSR; :meth:`SparseMlp.layer_arrays`
exposes the flat (data, indices, indptr, bias) arrays a pull task can
ship to a device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.utils.rng import SeedLike, derive_seed, seeded_rng


#: Graph-Challenge-standard activation cap: Y = min(max(WY+b, 0), 32)
ACTIVATION_CLIP = 32.0


@dataclass
class SparseMlp:
    """An L-layer constant-width sparse MLP with clipped-ReLU
    activations (the Sparse DNN Graph Challenge nonlinearity)."""

    width: int
    layers: List[sparse.csr_matrix]
    biases: List[np.ndarray]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def nnz(self) -> int:
        return int(sum(w.nnz for w in self.layers))

    def layer_arrays(self, l: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat device-shippable arrays of layer *l*: (data, indices,
        indptr, bias)."""
        w = self.layers[l]
        return (
            np.ascontiguousarray(w.data, dtype=np.float64),
            np.ascontiguousarray(w.indices, dtype=np.int64),
            np.ascontiguousarray(w.indptr, dtype=np.int64),
            np.ascontiguousarray(self.biases[l], dtype=np.float64),
        )

    def infer(self, x: np.ndarray) -> np.ndarray:
        """CPU reference inference over batch *x* (width × batch)."""
        a = x
        for w, b in zip(self.layers, self.biases):
            a = np.clip(w @ a + b[:, None], 0.0, ACTIVATION_CLIP)
        return a

    def category_of(self, x: np.ndarray) -> np.ndarray:
        """Challenge-style readout: argmax neuron per batch column."""
        return np.argmax(self.infer(x), axis=0)


def generate_sparse_mlp(
    width: int,
    num_layers: int,
    nnz_per_row: int = 8,
    *,
    seed: SeedLike = 0,
    bias: float = -0.05,
) -> SparseMlp:
    """Generate a challenge-style random sparse MLP.

    Each output neuron connects to exactly *nnz_per_row* random inputs
    with positive-mean weights; a constant negative bias (the
    challenge uses one) keeps activations sparse through depth.
    """
    if width < 1 or num_layers < 1:
        raise ValueError("network needs positive width and depth")
    nnz_per_row = min(nnz_per_row, width)
    layers: List[sparse.csr_matrix] = []
    biases: List[np.ndarray] = []
    for l in range(num_layers):
        rng = seeded_rng(derive_seed(int(seed) if not isinstance(seed, np.random.Generator) else 0, "layer", l))
        indptr = np.arange(width + 1, dtype=np.int64) * nnz_per_row
        indices = np.empty(width * nnz_per_row, dtype=np.int64)
        for r in range(width):
            indices[r * nnz_per_row : (r + 1) * nnz_per_row] = rng.choice(
                width, size=nnz_per_row, replace=False
            )
        # scale weights so the expected pre-activation roughly preserves
        # the input magnitude through depth (keeps deep nets alive)
        data = rng.uniform(0.5, 1.5, size=width * nnz_per_row) * (1.3 / nnz_per_row)
        layers.append(sparse.csr_matrix((data, indices, indptr), shape=(width, width)))
        biases.append(np.full(width, bias))
    return SparseMlp(width=width, layers=layers, biases=biases)


def generate_batch(width: int, batch: int, *, seed: SeedLike = 0, density: float = 0.3) -> np.ndarray:
    """A sparse nonnegative input batch (width × batch)."""
    rng = seeded_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(width, batch))
    mask = rng.uniform(size=(width, batch)) < density
    return np.where(mask, x, 0.0)
