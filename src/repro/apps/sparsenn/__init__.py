"""Sparse neural-network inference via task graph parallelism.

The paper's future-work section names "a broader range of workloads,
including machine learning [47]" — ref [47/48] is the authors' sparse
DNN inference engine built on the same task-graph model (large sparse
MLPs in the style of the MIT/IEEE Sparse DNN Graph Challenge).  This
package implements that extension:

- :mod:`~repro.apps.sparsenn.model` — random sparse-MLP generation and
  a CSR representation flattenable into device pulls;
- :mod:`~repro.apps.sparsenn.kernels` — SpMM + bias + ReLU as a fused
  GPU kernel, plus the CPU reference;
- :mod:`~repro.apps.sparsenn.flow` — the inference task graph: the
  input batch splits into column blocks, each block pipelines through
  the layers (block b at layer l+1 depends on block b at layer l);
  per-layer weights are pulled **once** and reused by every block's
  kernel through transitive dependencies (the paper's Fig.-3 pattern
  at scale).
"""

from repro.apps.sparsenn.model import SparseMlp, generate_sparse_mlp
from repro.apps.sparsenn.kernels import spmm_bias_relu_kernel
from repro.apps.sparsenn.flow import SparseInferenceFlow, build_inference_flow

__all__ = [
    "SparseInferenceFlow",
    "SparseMlp",
    "build_inference_flow",
    "generate_sparse_mlp",
    "spmm_bias_relu_kernel",
]
