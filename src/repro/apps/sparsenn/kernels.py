"""GPU kernels for sparse inference.

``spmm_bias_relu_kernel`` is the fused layer kernel ref [47] builds
its task graph from: one sparse-matrix × dense-block product plus bias
and ReLU, entirely in device memory.  The CSR arrays arrive as flat
device views (the paper's PointerCaster idiom); the kernel
reconstructs a zero-copy ``csr_matrix`` wrapper around them.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.apps.sparsenn.model import ACTIVATION_CLIP


def spmm_bias_relu_kernel(
    ctx,
    n_out: int,
    n_in: int,
    batch: int,
    w_data,
    w_indices,
    w_indptr,
    bias,
    x_in,
    x_out,
) -> None:
    """x_out = relu(W @ x_in + bias), all operands device-resident.

    ``x_in`` holds the (n_in × batch) activation block row-major,
    ``x_out`` the (n_out × batch) result.  The launch geometry is cost
    metadata; the math runs as one vectorized SpMM.
    """
    n_out, n_in, batch = int(n_out), int(n_in), int(batch)
    w = sparse.csr_matrix(
        (
            w_data[: int(w_indptr[n_out])],
            w_indices[: int(w_indptr[n_out])],
            w_indptr[: n_out + 1],
        ),
        shape=(n_out, n_in),
        copy=False,
    )
    x = x_in[: n_in * batch].reshape(n_in, batch)
    y = w @ x
    y += bias[:n_out, None]
    np.clip(y, 0.0, ACTIVATION_CLIP, out=y)
    x_out[: n_out * batch] = y.reshape(-1)


def argmax_readout_kernel(ctx, n, batch, x_in, out_idx) -> None:
    """Challenge readout: the winning neuron index per batch column."""
    n, batch = int(n), int(batch)
    x = x_in[: n * batch].reshape(n, batch)
    out_idx[:batch] = np.argmax(x, axis=0)


def spmm_reference(w: sparse.csr_matrix, bias: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Host-side fused layer, for differential tests."""
    return np.clip(w @ x + bias[:, None], 0.0, ACTIVATION_CLIP)
